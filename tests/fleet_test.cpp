// Fleet mode (src/fleet): the multi-tenant control-plane server. Covers the
// lock-free ingest ring, weak-token subscriptions, tenant lifecycle with
// stable (slot, generation) ids, hysteresis / signal-loss / failure
// isolation across tenants, the online-training lifecycle inside a tenant,
// and the §3.7 determinism contract: a scripted 4-tenant scenario (with one
// tenant under a telemetry blackout and one under a hard fault) replays
// bit-identically at GRAF_THREADS=1 and 8.
#include <gtest/gtest.h>

#include <atomic>
#include <bit>
#include <cstdint>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "fleet/fleet_server.h"
#include "fleet/ingest_queue.h"
#include "fleet/subscriber.h"
#include "fleet/tenant.h"
#include "gnn/latency_model.h"
#include "serve/online_trainer.h"

namespace graf::fleet {
namespace {

// --- shared tiny trained model (one expensive train for the whole suite) ---

gnn::Dag chain2() {
  gnn::Dag d;
  d.add_node("front");
  d.add_node("back");
  d.add_edge(0, 1);
  return d;
}

gnn::MpnnConfig tiny_cfg() {
  return {.node_features = 4, .embed_dim = 8, .mpnn_hidden = 8,
          .readout_hidden = 24, .message_steps = 2, .dropout_p = 0.05,
          .use_mpnn = true};
}

double truth_ms(const std::vector<double>& w, const std::vector<double>& q,
                const std::vector<double>& demand) {
  double total = 0.0;
  for (std::size_t i = 0; i < w.size(); ++i) {
    const double cores = q[i] / 1000.0;
    const double base = demand[i] / std::min(cores, 1.0);
    const double capacity = cores * 1000.0 / demand[i];
    const double utilization = std::min(w[i] / capacity, 0.95);
    total += base / (1.0 - utilization);
  }
  return total;
}

const std::vector<double> kRegimeA{20.0, 40.0};
const std::vector<double> kRegimeB{45.0, 90.0};  // drifted: ~2.2x the demand

gnn::Dataset regime_dataset(const std::vector<double>& demand, std::size_t n,
                            std::uint64_t seed) {
  Rng rng{seed};
  gnn::Dataset out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    gnn::Sample s;
    const double w = rng.uniform(20.0, 100.0);
    s.workload = {w, w};
    s.quota = {rng.uniform(300.0, 2000.0), rng.uniform(300.0, 2000.0)};
    s.latency_ms = truth_ms(s.workload, s.quota, demand) * rng.lognormal(0.0, 0.03);
    out.push_back(std::move(s));
  }
  return out;
}

gnn::LatencyModel& trained_model() {
  static gnn::LatencyModel m = [] {
    gnn::LatencyModel lm{chain2(), tiny_cfg(), 7};
    gnn::TrainConfig tcfg{.iterations = 900, .batch_size = 64, .lr = 3e-3,
                          .eval_every = 100, .seed = 3};
    lm.fit(regime_dataset(kRegimeA, 1200, 1), regime_dataset(kRegimeA, 200, 2),
           tcfg);
    return lm;
  }();
  return m;
}

/// Tenant spec on the shared trained model: one API fanning into both
/// services, short solver budget (tests exercise control flow, not solve
/// quality).
TenantSpec make_spec(const std::string& app, double slo_ms) {
  TenantSpec spec;
  spec.application = app;
  spec.slo_ms = slo_ms;
  spec.model = &trained_model();
  spec.meta = {.train_samples = 1200, .val_error_pct = 10.0,
               .created_sim_time = 0.0};
  spec.lo = {200.0, 200.0};
  spec.hi = {2000.0, 2000.0};
  spec.unit = {500.0, 500.0};
  spec.fanout = {{1.0, 1.0}};
  spec.training_reference = regime_dataset(kRegimeA, 64, 11);
  spec.solver.max_iterations = 200;
  return spec;
}

TelemetryUpdate qps_update(TenantId id, double now, std::vector<Qps> qps) {
  return {.tenant = id, .now = now, .api_qps = std::move(qps), .samples = {}};
}

struct ThreadGuard {
  explicit ThreadGuard(std::size_t n) { set_global_threads(n); }
  ~ThreadGuard() { set_global_threads(0); }
};

// --- IngestQueue ------------------------------------------------------------

TEST(IngestQueue, FifoOrderAndBoundedCapacity) {
  IngestQueue q{3};  // rounds up to 4
  EXPECT_EQ(q.capacity(), 4u);
  for (int i = 0; i < 4; ++i)
    EXPECT_TRUE(q.push({.tenant = {}, .now = static_cast<double>(i)}));
  EXPECT_FALSE(q.push({.tenant = {}, .now = 99.0})) << "full ring must reject";
  TelemetryUpdate u;
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(q.pop(u));
    EXPECT_EQ(u.now, static_cast<double>(i));
  }
  EXPECT_FALSE(q.pop(u));
}

TEST(IngestQueue, SurvivesManyLaps) {
  IngestQueue q{4};
  TelemetryUpdate u;
  double next = 0.0;
  for (int lap = 0; lap < 100; ++lap) {
    ASSERT_TRUE(q.push({.tenant = {}, .now = static_cast<double>(lap)}));
    ASSERT_TRUE(q.pop(u));
    EXPECT_EQ(u.now, next);
    next += 1.0;
  }
  EXPECT_EQ(q.size(), 0u);
}

TEST(IngestQueue, MultiProducerPreservesPerProducerOrder) {
  constexpr std::size_t kProducers = 4;
  constexpr std::size_t kEach = 200;
  IngestQueue q{kProducers * kEach};
  std::vector<std::thread> producers;
  for (std::size_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&q, p] {
      for (std::size_t i = 0; i < kEach; ++i) {
        TelemetryUpdate u;
        u.tenant.slot = static_cast<std::uint32_t>(p);
        u.now = static_cast<double>(i);
        while (!q.push(u)) std::this_thread::yield();
      }
    });
  }
  for (auto& t : producers) t.join();

  std::vector<double> last_seen(kProducers, -1.0);
  std::size_t total = 0;
  TelemetryUpdate u;
  while (q.pop(u)) {
    ++total;
    // FIFO per producer: each producer's `now` sequence drains in order.
    EXPECT_GT(u.now, last_seen[u.tenant.slot]);
    last_seen[u.tenant.slot] = u.now;
  }
  EXPECT_EQ(total, kProducers * kEach);
}

// Ring-full accounting under multi-producer *wrap* (ISSUE 8): a tiny ring
// laps thousands of times while four producers race each other and the
// concurrent consumer. Every accepted push must surface exactly once — no
// loss when a cell is re-armed for the next lap, no duplicate when two
// producers chase the same slot. Producers retry on full, so per-producer
// sequences arrive complete and in order; rejections are the producer's
// problem (the fleet server counts them), never the ring's.
TEST(IngestQueue, MultiProducerWrapLosesAndDuplicatesNothing) {
  constexpr std::size_t kProducers = 4;
  constexpr std::size_t kEach = 5000;
  IngestQueue q{8};
  std::atomic<std::uint64_t> rejected{0};
  std::vector<std::thread> producers;
  for (std::size_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&q, &rejected, p] {
      for (std::size_t i = 0; i < kEach; ++i) {
        TelemetryUpdate u;
        u.tenant.slot = static_cast<std::uint32_t>(p);
        u.now = static_cast<double>(i);
        while (!q.push(u)) {
          rejected.fetch_add(1, std::memory_order_relaxed);
          std::this_thread::yield();
        }
      }
    });
  }

  std::vector<double> next(kProducers, 0.0);
  std::size_t total = 0;
  TelemetryUpdate u;
  while (total < kProducers * kEach) {
    if (!q.pop(u)) {
      std::this_thread::yield();
      continue;
    }
    ASSERT_LT(u.tenant.slot, kProducers);
    EXPECT_EQ(u.now, next[u.tenant.slot])
        << "lost or duplicated item from producer " << u.tenant.slot;
    next[u.tenant.slot] = u.now + 1.0;
    ++total;
  }
  for (auto& t : producers) t.join();
  EXPECT_FALSE(q.pop(u)) << "accepted pushes and pops must balance";
  // With an 8-slot ring and 20k items, wrap pressure must actually have
  // produced full-ring rejections — otherwise this test isn't testing wrap.
  EXPECT_GT(rejected.load(), 0u);
}

// --- SubscriberRegistry -----------------------------------------------------

TEST(SubscriberRegistry, DroppedTokenStopsDeliveryAndIsPruned) {
  SubscriberRegistry reg;
  int calls = 0;
  auto token = reg.subscribe([&](const PlanUpdate&) { ++calls; });
  EXPECT_EQ(reg.publish({}).delivered, 1u);
  EXPECT_EQ(calls, 1);

  token.reset();  // dropping the only strong ref *is* unsubscription
  EXPECT_EQ(reg.publish({}).delivered, 0u);
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(reg.size(), 0u);
}

TEST(SubscriberRegistry, CancelStopsDeliveryWhileTokenHeld) {
  SubscriberRegistry reg;
  int calls = 0;
  auto token = reg.subscribe([&](const PlanUpdate&) { ++calls; });
  token->cancel();
  EXPECT_EQ(reg.publish({}).delivered, 0u);
  EXPECT_EQ(calls, 0);
}

TEST(SubscriberRegistry, FilterLimitsDeliveryToOneTenant) {
  SubscriberRegistry reg;
  int mine = 0, all = 0;
  const TenantId a{0, 1}, b{1, 1};
  auto ta = reg.subscribe([&](const PlanUpdate&) { ++mine; }, a);
  auto tall = reg.subscribe([&](const PlanUpdate&) { ++all; });
  reg.publish({.tenant = a});
  reg.publish({.tenant = b});
  EXPECT_EQ(mine, 1);
  EXPECT_EQ(all, 2);
}

TEST(SubscriberRegistry, ThrowingCallbackIsCountedAndSiblingsStillNotified) {
  SubscriberRegistry reg;
  int healthy = 0;
  auto bad = reg.subscribe(
      [](const PlanUpdate&) { throw std::runtime_error{"subscriber bug"}; });
  auto good = reg.subscribe([&](const PlanUpdate&) { ++healthy; });
  const auto stats = reg.publish({});
  EXPECT_EQ(stats.delivered, 1u);
  EXPECT_EQ(stats.failed, 1u);
  EXPECT_EQ(healthy, 1);
}

// --- FleetServer: tenant lifecycle ------------------------------------------

TEST(FleetServer, AdmissionLookupAndDuplicateRejection) {
  FleetServer fleet;
  const TenantId a = fleet.add_tenant(make_spec("checkout", 200.0));
  const TenantId b = fleet.add_tenant(make_spec("search", 150.0));
  EXPECT_EQ(fleet.tenant_count(), 2u);
  ASSERT_NE(fleet.tenant(a), nullptr);
  EXPECT_EQ(fleet.tenant(a)->application(), "checkout");
  EXPECT_EQ(fleet.find("search", 150.0), std::optional{b});
  EXPECT_FALSE(fleet.find("search", 999.0).has_value());

  // Same app at a *different* SLO is a distinct tenant; the same pair is not.
  EXPECT_NO_THROW(fleet.add_tenant(make_spec("checkout", 100.0)));
  EXPECT_THROW(fleet.add_tenant(make_spec("checkout", 200.0)),
               std::invalid_argument);

  TenantSpec bad = make_spec("broken", 100.0);
  bad.model = nullptr;
  EXPECT_THROW(fleet.add_tenant(bad), std::invalid_argument);
  bad = make_spec("broken", 100.0);
  bad.lo = {200.0};  // model has two services
  EXPECT_THROW(fleet.add_tenant(bad), std::invalid_argument);
}

TEST(FleetServer, RemoveTenantInvalidatesEveryOutstandingId) {
  FleetServer fleet;
  const TenantId a = fleet.add_tenant(make_spec("checkout", 200.0));
  ASSERT_TRUE(fleet.remove_tenant(a));
  EXPECT_EQ(fleet.tenant(a), nullptr);
  EXPECT_FALSE(fleet.remove_tenant(a)) << "stale id must be inert";
  EXPECT_EQ(fleet.tenant_count(), 0u);

  // The slot recycles under a fresh generation: the old id still resolves
  // to nothing, and a queued push carrying it is discarded at drain time.
  const TenantId reborn = fleet.add_tenant(make_spec("checkout", 200.0));
  EXPECT_EQ(reborn.slot, a.slot);
  EXPECT_NE(reborn.generation, a.generation);
  EXPECT_EQ(fleet.tenant(a), nullptr);

  fleet.push(qps_update(a, 1.0, {60.0}));
  const auto stats = fleet.step();
  EXPECT_EQ(stats.drained, 1u);
  EXPECT_EQ(stats.planned, 0u);
  EXPECT_EQ(fleet.metrics().counter("fleet.ingest.stale").value(), 1.0);
}

// --- FleetServer: the control cycle -----------------------------------------

TEST(FleetServer, ChangeOnlyNotification) {
  FleetServer fleet;
  const TenantId id = fleet.add_tenant(make_spec("checkout", 200.0));
  std::vector<PlanUpdate> updates;
  auto token =
      fleet.subscribe([&](const PlanUpdate& u) { updates.push_back(u); });

  fleet.push(qps_update(id, 1.0, {60.0}));
  auto s1 = fleet.step();
  EXPECT_EQ(s1.planned, 1u);
  ASSERT_EQ(updates.size(), 1u);
  EXPECT_EQ(updates[0].seq, 1u);
  EXPECT_FALSE(updates[0].degraded);
  EXPECT_FALSE(updates[0].plan.instances.empty());

  // Identical workload: hysteresis coasts, nothing new for subscribers.
  fleet.push(qps_update(id, 2.0, {60.0}));
  auto s2 = fleet.step();
  EXPECT_EQ(s2.coasted, 1u);
  EXPECT_EQ(s2.notified, 0u);
  EXPECT_EQ(updates.size(), 1u);

  // A big swing re-solves; subscribers hear about it iff replicas moved.
  fleet.push(qps_update(id, 3.0, {95.0}));
  auto s3 = fleet.step();
  EXPECT_EQ(s3.planned, 1u);
  if (updates.size() == 2u) {
    EXPECT_EQ(updates[1].seq, 2u);
    EXPECT_NE(updates[1].plan.instances, updates[0].plan.instances);
  }

  // An idle step (no pushes) drains nothing and notifies no one.
  const std::size_t before = updates.size();
  auto s4 = fleet.step();
  EXPECT_EQ(s4.drained, 0u);
  EXPECT_EQ(updates.size(), before);
}

TEST(FleetServer, HysteresisCoastsInsideBandAndSloRetargetForcesResolve) {
  FleetServer fleet;
  const TenantId id = fleet.add_tenant(make_spec("checkout", 200.0));
  fleet.push(qps_update(id, 1.0, {60.0}));
  EXPECT_EQ(fleet.step().planned, 1u);

  fleet.push(qps_update(id, 2.0, {63.0}));  // +5% < 10% band
  EXPECT_EQ(fleet.step().coasted, 1u);

  // Retargeting the SLO must bypass the band even with identical traffic.
  fleet.tenant(id)->set_slo(120.0);
  fleet.push(qps_update(id, 3.0, {63.0}));
  EXPECT_EQ(fleet.step().planned, 1u);
}

TEST(FleetServer, SignalLossHoldsPlanAndFlagsDegraded) {
  FleetServer fleet;
  const TenantId id = fleet.add_tenant(make_spec("checkout", 200.0));
  std::vector<PlanUpdate> updates;
  auto token =
      fleet.subscribe([&](const PlanUpdate& u) { updates.push_back(u); });

  fleet.push(qps_update(id, 1.0, {60.0}));
  fleet.step();
  ASSERT_EQ(updates.size(), 1u);
  const auto held = updates[0].plan.instances;

  // Telemetry blackout: the workload signal reads zero. The tenant coasts
  // on its last plan (no solve against a phantom-zero workload) and the
  // degraded transition is itself a notifiable plan change.
  fleet.push(qps_update(id, 2.0, {0.0}));
  fleet.step();
  ASSERT_EQ(updates.size(), 2u);
  EXPECT_TRUE(updates[1].degraded);
  EXPECT_EQ(updates[1].plan.instances, held);
  EXPECT_TRUE(fleet.tenant(id)->degraded());
  EXPECT_EQ(fleet.metrics().counter("fleet.signal_losses").value(), 1.0);

  // Recovery: a real signal re-solves and clears the flag (notified again).
  fleet.push(qps_update(id, 3.0, {60.0}));
  fleet.step();
  ASSERT_EQ(updates.size(), 3u);
  EXPECT_FALSE(updates[2].degraded);
  EXPECT_FALSE(fleet.tenant(id)->degraded());
}

TEST(FleetServer, TenantFailureNeverStallsSiblings) {
  FleetServer fleet;
  const TenantId good = fleet.add_tenant(make_spec("healthy", 200.0));
  const TenantId bad = fleet.add_tenant(make_spec("faulty", 200.0));

  // The faulty tenant's push carries a malformed workload vector (two APIs
  // against a one-API analyzer): its plan() throws. Same step, the healthy
  // sibling must still plan normally.
  fleet.push(qps_update(good, 1.0, {60.0}));
  fleet.push(qps_update(bad, 1.0, {60.0, 60.0}));
  const auto stats = fleet.step();
  EXPECT_EQ(stats.planned, 1u);
  EXPECT_EQ(stats.failures, 1u);
  EXPECT_TRUE(fleet.tenant(good)->has_plan());
  EXPECT_FALSE(fleet.tenant(good)->degraded());
  EXPECT_TRUE(fleet.tenant(bad)->degraded());
  EXPECT_EQ(fleet.tenant(bad)->failures(), 1u);
  EXPECT_EQ(fleet.metrics().counter("fleet.tenant_failures").value(), 1.0);

  // The failure is not sticky: a well-formed push recovers the tenant.
  fleet.push(qps_update(bad, 2.0, {60.0}));
  EXPECT_EQ(fleet.step().planned, 1u);
  EXPECT_FALSE(fleet.tenant(bad)->degraded());
}

TEST(FleetServer, DrainCoalescesToNewestWorkload) {
  FleetServer fleet;
  const TenantId id = fleet.add_tenant(make_spec("checkout", 200.0));
  // Three pushes between steps: one drain, one solve, at the newest rates.
  fleet.push(qps_update(id, 1.0, {40.0}));
  fleet.push(qps_update(id, 2.0, {50.0}));
  fleet.push(qps_update(id, 3.0, {60.0}));
  const auto stats = fleet.step();
  EXPECT_EQ(stats.drained, 3u);
  EXPECT_EQ(stats.planned, 1u);
  EXPECT_EQ(fleet.tenant(id)->plans(), 1u);

  // The plan matches a from-scratch solve at the final rates only.
  FleetServer ref;
  const TenantId rid = ref.add_tenant(make_spec("checkout", 200.0));
  ref.push(qps_update(rid, 3.0, {60.0}));
  ref.step();
  EXPECT_EQ(ref.tenant(rid)->last_plan().instances,
            fleet.tenant(id)->last_plan().instances);
}

TEST(FleetServer, MetricsSnapshotMergesFleetAndTenantRegistries) {
  FleetServer fleet;
  const TenantId a = fleet.add_tenant(make_spec("checkout", 200.0));
  const TenantId b = fleet.add_tenant(make_spec("search", 150.0));
  fleet.push(qps_update(a, 1.0, {60.0}));
  fleet.push(qps_update(b, 1.0, {45.0}));
  fleet.step();

  const auto snap = fleet.metrics_snapshot();
  const auto* steps = snap.find("fleet.steps");
  ASSERT_NE(steps, nullptr);
  EXPECT_EQ(steps->value, 1.0);
  // Per-tenant instruments sum across tenants in the merged view.
  const auto* plans = snap.find("fleet.tenant.plans");
  ASSERT_NE(plans, nullptr);
  EXPECT_EQ(plans->value, 2.0);
  const auto* core_plans = snap.find("core.plans_total");
  ASSERT_NE(core_plans, nullptr);
  EXPECT_EQ(core_plans->value, 2.0);
}

// --- Online training inside a tenant ----------------------------------------

TEST(FleetServer, OnlineTrainingPromotesThroughTenantHandle) {
  FleetServer fleet;
  TenantSpec spec = make_spec("drift-app", 200.0);
  const TenantId id = fleet.add_tenant(spec);

  serve::OnlineTrainerConfig cfg;
  cfg.window_capacity = 360;
  cfg.min_samples = 240;
  cfg.cooldown = 60;
  cfg.ewma_alpha = 0.1;
  cfg.drift_factor = 2.5;
  cfg.drift_floor_pct = 15.0;
  cfg.fine_tune = {.iterations = 700, .batch_size = 64, .lr = 2e-3,
                   .eval_every = 100, .seed = 5};
  ASSERT_TRUE(fleet.enable_online_training(id, cfg));
  EXPECT_FALSE(fleet.enable_online_training({99, 99}, cfg));

  Tenant* t = fleet.tenant(id);
  const auto initial = t->handle().acquire();
  ASSERT_NE(initial, nullptr);

  // Stream drifted-regime observations through the normal ingest path; the
  // trainer runs during step() and eventually promotes a fine-tuned model.
  gnn::Dataset live = regime_dataset(kRegimeB, 420, 40);
  double now = 100.0;
  std::size_t sent = 0;
  while (sent < live.size()) {
    TelemetryUpdate u = qps_update(id, now, {60.0});
    for (std::size_t i = 0; i < 60 && sent < live.size(); ++i)
      u.samples.push_back(live[sent++]);
    ASSERT_TRUE(fleet.push(std::move(u)));
    fleet.step();
    now += 60.0;
  }

  ASSERT_NE(t->trainer(), nullptr);
  EXPECT_GE(t->trainer()->stats().promotions, 1u);
  EXPECT_NE(t->handle().acquire().get(), initial.get())
      << "promotion must hot-swap this tenant's serving handle";
  EXPECT_GT(fleet.registry().active_version(t->key()), 1u);

  // The next plan solves through the promoted model without incident.
  fleet.push(qps_update(id, now, {90.0}));
  EXPECT_EQ(fleet.step().planned, 1u);
  EXPECT_FALSE(t->degraded());
}

// --- Determinism: the §3.7 contract at fleet scale --------------------------

/// Exact-bits rendering of a plan stream: doubles go out as hex bit
/// patterns, so two replays match iff every value is bit-identical.
/// `batch_plans` selects the block-diagonal batched solve path (§3.13) or
/// the PR-6 one-solve-per-tenant fan-out; the two must produce the same
/// digest bit for bit.
std::string run_scripted_scenario(bool batch_plans = true) {
  FleetServer fleet{FleetConfig{.batch_plans = batch_plans}};
  std::vector<TenantId> ids;
  for (int i = 0; i < 4; ++i) {
    TenantSpec spec = make_spec("app" + std::to_string(i), 120.0 + 40.0 * i);
    if (i == 1) {
      // Tenant 1 solves via the thread-pool multi-start fan-out: a
      // parallel_for nested inside the fleet's own fan-out task.
      spec.solver.batched_multi_start = false;
      spec.solver.multi_starts = 2;
    }
    ids.push_back(fleet.add_tenant(spec));
  }

  std::ostringstream out;
  auto token = fleet.subscribe([&](const PlanUpdate& u) {
    out << u.application << '#' << u.seq << ':';
    for (int inst : u.plan.instances) out << inst << ',';
    for (Millicores q : u.plan.quota)
      out << std::hex << std::bit_cast<std::uint64_t>(q) << std::dec << ',';
    out << std::hex << std::bit_cast<std::uint64_t>(u.plan.predicted_ms)
        << std::dec << (u.degraded ? "!D" : "") << ';';
  });

  for (int step = 0; step < 12; ++step) {
    const double now = 10.0 * (step + 1);
    for (int i = 0; i < 4; ++i) {
      // Deterministic per-tenant traffic: phase-shifted swings big enough
      // to beat the hysteresis band on most steps.
      double qps = 40.0 + 12.0 * ((step * (i + 3) + i) % 5);
      if (i == 3 && step >= 4 && step <= 6) qps = 0.0;  // telemetry blackout
      if (i == 2 && step == 5) {
        // Hard fault: malformed workload vector; plan() throws, tenant 2
        // degrades alone.
        fleet.push(qps_update(ids[i], now, {qps, qps}));
        continue;
      }
      fleet.push(qps_update(ids[i], now, {qps}));
    }
    const auto stats = fleet.step();
    out << "step" << step << "=" << stats.planned << "/" << stats.coasted
        << "/" << stats.failures << "/" << stats.notified << ";";
  }
  return out.str();
}

TEST(FleetServer, ScriptedScenarioReplaysBitIdenticallyAcrossThreadCounts) {
  std::string at1, at8;
  {
    ThreadGuard guard{1};
    at1 = run_scripted_scenario();
  }
  {
    ThreadGuard guard{8};
    at8 = run_scripted_scenario();
  }
  EXPECT_FALSE(at1.empty());
  EXPECT_NE(at1.find("!D"), std::string::npos)
      << "scenario must exercise the degraded path";
  EXPECT_EQ(at1, at8) << "fleet step() must be bit-identical at any "
                         "GRAF_THREADS (DESIGN.md §3.7/§3.10)";
}

// --- Batched planning (§3.13): bit-identity with the per-tenant path --------

// The tentpole contract: coalescing same-model tenants into one
// block-diagonal solve_batch must reproduce the per-tenant fan-out exactly —
// same quota bits, same predicted_ms bits, same step stats — at every thread
// count. Tenant 1's distinct solver config (multi_starts=2, pool fan-out)
// keeps a solo group in the mix, so the scenario covers batched groups and
// per-tenant fallback side by side.
TEST(FleetServer, BatchedPlanningBitIdenticalToPerTenantAcrossThreadCounts) {
  for (std::size_t threads : {1u, 2u, 8u}) {
    ThreadGuard guard{threads};
    const std::string batched = run_scripted_scenario(true);
    const std::string fanout = run_scripted_scenario(false);
    EXPECT_FALSE(batched.empty());
    EXPECT_EQ(batched, fanout)
        << "batched fleet planning must be bit-identical to the per-tenant "
           "path at GRAF_THREADS=" << threads << " (DESIGN.md §3.13)";
  }
}

TEST(FleetServer, BatchedGroupsCoalesceSameModelTenants) {
  FleetServer batched{FleetConfig{.batch_plans = true}};
  FleetServer fanout{FleetConfig{.batch_plans = false}};
  std::vector<TenantId> bids, fids;
  for (int i = 0; i < 3; ++i) {
    TenantSpec spec = make_spec("svc" + std::to_string(i), 150.0 + 30.0 * i);
    if (i == 2) spec.solver.multi_starts = 2;  // distinct config: solo group
    bids.push_back(batched.add_tenant(spec));
    fids.push_back(fanout.add_tenant(spec));
  }
  for (int i = 0; i < 3; ++i) {
    const double qps = 45.0 + 10.0 * i;
    batched.push(qps_update(bids[i], 1.0, {qps}));
    fanout.push(qps_update(fids[i], 1.0, {qps}));
  }
  EXPECT_EQ(batched.step().planned, 3u);
  EXPECT_EQ(fanout.step().planned, 3u);

  // Tenants 0 and 1 share (fingerprint, node count, solver config): exactly
  // one batched group of two. Tenant 2's multi_starts mismatch solves alone.
  EXPECT_EQ(batched.metrics().counter("fleet.batched_groups").value(), 1.0);
  EXPECT_EQ(batched.metrics().counter("fleet.batched_tenants").value(), 2.0);
  EXPECT_EQ(fanout.metrics().counter("fleet.batched_groups").value(), 0.0);

  for (int i = 0; i < 3; ++i) {
    const auto& bp = batched.tenant(bids[i])->last_plan();
    const auto& fp = fanout.tenant(fids[i])->last_plan();
    ASSERT_EQ(bp.quota.size(), fp.quota.size());
    for (std::size_t s = 0; s < bp.quota.size(); ++s)
      EXPECT_EQ(std::bit_cast<std::uint64_t>(bp.quota[s]),
                std::bit_cast<std::uint64_t>(fp.quota[s]));
    EXPECT_EQ(std::bit_cast<std::uint64_t>(bp.predicted_ms),
              std::bit_cast<std::uint64_t>(fp.predicted_ms));
    EXPECT_EQ(bp.instances, fp.instances);
  }
}

/// Batch-composition churn: tenants join and leave mid-run, so the batched
/// grouping reshuffles between steps (groups of 1..4 members). Same digest
/// contract as run_scripted_scenario.
std::string run_composition_scenario(bool batch_plans) {
  FleetServer fleet{FleetConfig{.batch_plans = batch_plans}};
  std::ostringstream out;
  auto token = fleet.subscribe([&](const PlanUpdate& u) {
    out << u.application << '#' << u.seq << ':';
    for (int inst : u.plan.instances) out << inst << ',';
    for (Millicores q : u.plan.quota)
      out << std::hex << std::bit_cast<std::uint64_t>(q) << std::dec << ',';
    out << std::hex << std::bit_cast<std::uint64_t>(u.plan.predicted_ms)
        << std::dec << (u.degraded ? "!D" : "") << ';';
  });

  std::vector<TenantId> ids;
  std::vector<bool> gone;
  ids.push_back(fleet.add_tenant(make_spec("base0", 150.0)));
  ids.push_back(fleet.add_tenant(make_spec("base1", 190.0)));
  gone.assign(2, false);
  for (int step = 0; step < 10; ++step) {
    if (step == 3) {
      // Two tenants enter: the next batched group can grow to four.
      ids.push_back(fleet.add_tenant(make_spec("join2", 230.0)));
      ids.push_back(fleet.add_tenant(make_spec("join3", 270.0)));
      gone.resize(ids.size(), false);
    }
    if (step == 7) {
      // One leaves mid-run: its slot recycles, the batch shrinks.
      fleet.remove_tenant(ids[1]);
      gone[1] = true;
    }
    const double now = 10.0 * (step + 1);
    for (std::size_t i = 0; i < ids.size(); ++i) {
      if (gone[i]) continue;
      const double qps =
          40.0 + 12.0 * ((static_cast<std::size_t>(step) * (i + 2) + i) % 5);
      fleet.push(qps_update(ids[i], now, {qps}));
    }
    const auto stats = fleet.step();
    out << "step" << step << "=" << stats.planned << "/" << stats.coasted
        << "/" << stats.failures << "/" << stats.notified << ";";
  }
  if (batch_plans) {
    EXPECT_GT(fleet.metrics().counter("fleet.batched_tenants").value(), 0.0)
        << "composition scenario must actually exercise batched groups";
  }
  return out.str();
}

TEST(FleetServer, BatchedPlanningBitIdenticalUnderCompositionChurn) {
  for (std::size_t threads : {1u, 8u}) {
    ThreadGuard guard{threads};
    const std::string batched = run_composition_scenario(true);
    const std::string fanout = run_composition_scenario(false);
    EXPECT_FALSE(batched.empty());
    EXPECT_EQ(batched, fanout)
        << "tenants entering/leaving mid-run must not perturb batched "
           "results at GRAF_THREADS=" << threads;
  }
}

// --- fleet.plan_cache.* delta mirroring (evictions) -------------------------

// Evictions must mirror into the fleet counter exactly like hits/misses: as
// per-step deltas against a per-tenant baseline, never re-counting history.
TEST(FleetServer, PlanCacheEvictionsMirroredAsDeltas) {
  FleetServer fleet;
  // Loose SLO: only feasible plans enter the cache, and only insertions
  // into a full cache evict.
  TenantSpec spec = make_spec("evict-app", 1000.0);
  spec.plan_cache_capacity = 1;   // every second distinct workload evicts
  spec.change_threshold = 0.0;    // defeat hysteresis: each push re-solves
  const TenantId id = fleet.add_tenant(spec);

  const double rates[] = {40.0, 60.0, 80.0, 95.0};
  double now = 1.0;
  for (double qps : rates) {
    fleet.push(qps_update(id, now, {qps}));
    fleet.step();
    now += 10.0;
    // The mirror tracks the controller's own counter step for step.
    EXPECT_EQ(fleet.metrics().counter("fleet.plan_cache.evictions").value(),
              static_cast<double>(
                  fleet.tenant(id)->controller().plan_cache_evictions()));
  }
  // Capacity 1 with 4 distinct workloads: every feasible insertion after the
  // first evicted one (only feasible plans are cached, so the exact count
  // depends on the learned model's verdicts — but several must land).
  EXPECT_GE(fleet.tenant(id)->controller().plan_cache_evictions(), 2u);
  EXPECT_EQ(fleet.metrics().counter("fleet.plan_cache.evictions").value(),
            static_cast<double>(
                fleet.tenant(id)->controller().plan_cache_evictions()));
}

TEST(FleetServer, DisabledPlanCacheReportsNoSpuriousEvictions) {
  FleetServer fleet;
  TenantSpec spec = make_spec("nocache-app", 1000.0);
  spec.change_threshold = 0.0;
  const TenantId id = fleet.add_tenant(spec);
  fleet.tenant(id)->controller().set_plan_cache_capacity(0);

  double now = 1.0;
  for (double qps : {40.0, 70.0, 95.0}) {
    fleet.push(qps_update(id, now, {qps}));
    fleet.step();
    now += 10.0;
  }
  EXPECT_EQ(fleet.tenant(id)->controller().plan_cache_evictions(), 0u);
  EXPECT_EQ(fleet.metrics().counter("fleet.plan_cache.evictions").value(), 0.0)
      << "a disabled cache must not report spurious evictions";
}

TEST(FleetServer, PerTenantPlanCacheCapacityFromSpec) {
  FleetServer fleet;
  // Two tenants on the same model, one with a deep cache (the make_spec
  // default of 64) and one capped at a single entry via TenantSpec — the
  // capacity must be honored per tenant, not fleet-wide.
  TenantSpec lean = make_spec("lean-app", 1000.0);
  lean.plan_cache_capacity = 1;
  lean.change_threshold = 0.0;
  TenantSpec deep = make_spec("deep-app", 1000.0);
  deep.change_threshold = 0.0;
  const TenantId lid = fleet.add_tenant(lean);
  const TenantId did = fleet.add_tenant(deep);

  // Alternate two workloads three times: the single-entry tenant thrashes
  // (each insertion evicts the other workload's entry, so repeats miss)
  // while the deep tenant serves every repeat from cache.
  double now = 1.0;
  for (int round = 0; round < 3; ++round)
    for (double qps : {40.0, 80.0}) {
      fleet.push(qps_update(lid, now, {qps}));
      fleet.push(qps_update(did, now, {qps}));
      fleet.step();
      now += 10.0;
    }
  EXPECT_EQ(fleet.tenant(lid)->controller().plan_cache_hits(), 0u)
      << "capacity-1 tenant: the alternating workload always evicted first";
  EXPECT_GE(fleet.tenant(lid)->controller().plan_cache_evictions(), 3u);
  EXPECT_EQ(fleet.tenant(did)->controller().plan_cache_hits(), 4u)
      << "default-capacity sibling serves every repeat from its own cache";
  EXPECT_EQ(fleet.tenant(did)->controller().plan_cache_evictions(), 0u);
}

TEST(FleetServer, BatchedGroupThrowFallsBackAndEveryTenantCommits) {
  FleetServer fleet;  // batch_plans on by default
  std::vector<TenantId> ids;
  for (int t = 0; t < 3; ++t)
    ids.push_back(fleet.add_tenant(make_spec("app-" + std::to_string(t), 200.0)));

  // All three share the model fingerprint and solver config, so they form
  // one batched group — then the middle tenant's retargeted SLO of -1
  // passes prepare() (begin_plan does not validate the SLO) and makes
  // solve_batch throw mid-group. The per-tenant fallback must leave the
  // two healthy tenants with committed plans and degrade the broken one
  // alone, with counters consistent.
  fleet.tenant(ids[1])->set_slo(-1.0);
  for (int t = 0; t < 3; ++t)
    fleet.push(qps_update(ids[static_cast<std::size_t>(t)], 1.0,
                          {55.0 + 5.0 * t}));
  const auto stats = fleet.step();
  EXPECT_EQ(stats.planned, 2u);
  EXPECT_EQ(stats.failures, 1u);
  EXPECT_TRUE(fleet.tenant(ids[0])->has_plan());
  EXPECT_TRUE(fleet.tenant(ids[2])->has_plan());
  EXPECT_FALSE(fleet.tenant(ids[0])->degraded());
  EXPECT_FALSE(fleet.tenant(ids[2])->degraded());
  EXPECT_FALSE(fleet.tenant(ids[1])->has_plan());
  EXPECT_TRUE(fleet.tenant(ids[1])->degraded());
  EXPECT_EQ(fleet.tenant(ids[1])->failures(), 1u);
  EXPECT_EQ(fleet.metrics().counter("fleet.plans").value(), 2.0);
  EXPECT_EQ(fleet.metrics().counter("fleet.tenant_failures").value(), 1.0);

  // The healthy tenants' fallback plans must equal a from-scratch solo
  // solve — the fallback re-runs each member through its own pipeline.
  FleetServer ref{{.batch_plans = false}};
  const TenantId rid = ref.add_tenant(make_spec("app-0", 200.0));
  ref.push(qps_update(rid, 1.0, {55.0}));
  ref.step();
  EXPECT_EQ(ref.tenant(rid)->last_plan().instances,
            fleet.tenant(ids[0])->last_plan().instances);

  // Recovery: a sane SLO on the broken tenant re-solves on the next step.
  fleet.tenant(ids[1])->set_slo(200.0);
  fleet.push(qps_update(ids[1], 2.0, {60.0}));
  EXPECT_EQ(fleet.step().planned, 1u);
  EXPECT_FALSE(fleet.tenant(ids[1])->degraded());
}

}  // namespace
}  // namespace graf::fleet
