#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "trace/latency_window.h"
#include "trace/tracer.h"

namespace graf::trace {
namespace {

TEST(LatencyWindow, PercentileOverAll) {
  LatencyWindow w;
  for (int i = 1; i <= 100; ++i) w.add(0.0, static_cast<double>(i));
  EXPECT_NEAR(w.percentile(50.0), 50.5, 1e-9);
  EXPECT_NEAR(w.percentile(99.0), 99.01, 0.1);
}

TEST(LatencyWindow, PercentileSinceFilters) {
  LatencyWindow w;
  for (int i = 0; i < 50; ++i) w.add(1.0, 10.0);
  for (int i = 0; i < 50; ++i) w.add(2.0, 100.0);
  EXPECT_DOUBLE_EQ(w.percentile_since(1.5, 50.0), 100.0);
}

TEST(LatencyWindow, HorizonPrunesOldSamples) {
  LatencyWindow w{10.0};
  w.add(0.0, 1.0);
  w.add(5.0, 2.0);
  w.add(20.0, 3.0);  // prunes anything before t=10
  EXPECT_EQ(w.size(), 1u);
  EXPECT_DOUBLE_EQ(w.percentile(50.0), 3.0);
}

TEST(LatencyWindow, CountAndMeanSince) {
  LatencyWindow w;
  w.add(1.0, 10.0);
  w.add(2.0, 20.0);
  w.add(3.0, 30.0);
  EXPECT_EQ(w.count_since(2.0), 2u);
  EXPECT_DOUBLE_EQ(w.mean_since(2.0), 25.0);
  EXPECT_DOUBLE_EQ(w.mean_since(100.0), 0.0);
}

TEST(LatencyWindow, EmptyPercentileThrows) {
  LatencyWindow w;
  EXPECT_THROW(w.percentile(50.0), std::logic_error);
}

// The sorted cache must stay coherent across the query/mutate interleavings
// the control loop produces.

TEST(LatencyWindow, RepeatedQueriesSeeNewSamples) {
  LatencyWindow w;
  for (int i = 1; i <= 10; ++i) w.add(static_cast<double>(i), 1.0);
  EXPECT_DOUBLE_EQ(w.percentile_since(0.0, 99.0), 1.0);
  EXPECT_DOUBLE_EQ(w.percentile_since(0.0, 99.0), 1.0);  // cache hit
  w.add(11.0, 100.0);  // must invalidate the cache
  EXPECT_DOUBLE_EQ(w.percentile_since(0.0, 100.0), 100.0);
}

TEST(LatencyWindow, ChangingCutoffRebuildsCache) {
  LatencyWindow w;
  for (int i = 0; i < 50; ++i) w.add(1.0, 10.0);
  for (int i = 0; i < 50; ++i) w.add(2.0, 100.0);
  EXPECT_NEAR(w.percentile_since(0.0, 50.0), 55.0, 1e-9);
  EXPECT_DOUBLE_EQ(w.percentile_since(1.5, 50.0), 100.0);
  EXPECT_NEAR(w.percentile_since(0.0, 50.0), 55.0, 1e-9);  // back again
}

TEST(LatencyWindow, OutOfOrderAddsStayCorrect) {
  LatencyWindow w;
  w.add(10.0, 1.0);
  w.add(5.0, 2.0);  // breaks time ordering: falls back to linear scans
  w.add(20.0, 3.0);
  EXPECT_EQ(w.count_since(6.0), 2u);
  EXPECT_DOUBLE_EQ(w.mean_since(6.0), 2.0);
  EXPECT_DOUBLE_EQ(w.percentile_since(6.0, 100.0), 3.0);
  EXPECT_DOUBLE_EQ(w.percentile_since(0.0, 0.0), 1.0);
}

TEST(LatencyWindow, QueriesCorrectAfterPrune) {
  LatencyWindow w;
  for (int i = 0; i < 10; ++i) w.add(static_cast<double>(i), static_cast<double>(i));
  EXPECT_DOUBLE_EQ(w.percentile_since(0.0, 0.0), 0.0);
  w.prune_before(5.0);
  EXPECT_EQ(w.size(), 5u);
  EXPECT_DOUBLE_EQ(w.percentile_since(0.0, 0.0), 5.0);
  EXPECT_DOUBLE_EQ(w.percentile_since(0.0, 100.0), 9.0);
}

TEST(LatencyWindow, ClearResetsCachedState) {
  LatencyWindow w;
  w.add(1.0, 5.0);
  EXPECT_DOUBLE_EQ(w.percentile(50.0), 5.0);
  w.clear();
  EXPECT_TRUE(w.empty());
  EXPECT_THROW(w.percentile(50.0), std::logic_error);
  w.add(2.0, 7.0);
  EXPECT_DOUBLE_EQ(w.percentile(50.0), 7.0);
}

TEST(LatencyWindow, MatchesExactPercentileOnRandomStream) {
  LatencyWindow w{1e9};  // horizon far beyond the stream: nothing prunes
  std::vector<double> vals;
  unsigned state = 12345;
  for (int i = 0; i < 500; ++i) {
    state = state * 1664525u + 1013904223u;
    const double v = static_cast<double>(state % 10000u) / 10.0;
    w.add(static_cast<double>(i), v);
    vals.push_back(v);
  }
  for (double rank : {0.0, 25.0, 50.0, 95.0, 99.0, 100.0}) {
    std::vector<double> copy = vals;
    std::sort(copy.begin(), copy.end());
    const double pos = rank / 100.0 * static_cast<double>(copy.size() - 1);
    const auto lo = static_cast<std::size_t>(pos);
    const double frac = pos - static_cast<double>(lo);
    const double exact = lo + 1 < copy.size()
                             ? copy[lo] + frac * (copy[lo + 1] - copy[lo])
                             : copy.back();
    EXPECT_NEAR(w.percentile(rank), exact, 1e-9);
  }
}

TEST(Tracer, RecordsAndCounts) {
  Tracer tr{2, 3};
  RequestTrace t;
  t.api = 0;
  t.start = 0.0;
  t.end = 0.1;
  t.visits = {1, 2, 0};
  tr.record(t);
  EXPECT_EQ(tr.recorded(), 1u);
  EXPECT_EQ(tr.history_size(0), 1u);
  EXPECT_EQ(tr.history_size(1), 0u);
  EXPECT_NEAR(t.e2e_ms(), 100.0, 1e-9);
}

TEST(Tracer, FanoutPercentile) {
  Tracer tr{1, 2};
  // Service 1 visited once in 90% of traces, twice in 10%.
  for (int i = 0; i < 90; ++i) tr.record({0, 0.0, 0.1, true, {1, 1}});
  for (int i = 0; i < 10; ++i) tr.record({0, 0.0, 0.1, true, {1, 2}});
  const auto f90 = tr.fanout(0, 90.0);
  EXPECT_DOUBLE_EQ(f90[0], 1.0);
  EXPECT_NEAR(f90[1], 1.0, 0.15);
  const auto f99 = tr.fanout(0, 99.0);
  EXPECT_NEAR(f99[1], 2.0, 0.1);
}

TEST(Tracer, EmptyHistoryYieldsZeros) {
  Tracer tr{1, 4};
  const auto f = tr.fanout(0);
  for (double v : f) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(Tracer, CapacityBoundsHistory) {
  Tracer tr{1, 1, 16};
  for (int i = 0; i < 100; ++i) tr.record({0, 0.0, 0.1, true, {1}});
  EXPECT_EQ(tr.history_size(0), 16u);
  EXPECT_EQ(tr.recorded(), 100u);
}

TEST(Tracer, RejectsBadApi) {
  Tracer tr{1, 1};
  EXPECT_THROW(tr.record({5, 0.0, 0.1, true, {1}}), std::out_of_range);
}

TEST(Tracer, ClearEmptiesHistory) {
  Tracer tr{1, 1};
  tr.record({0, 0.0, 0.1, true, {1}});
  tr.clear();
  EXPECT_EQ(tr.history_size(0), 0u);
}

}  // namespace
}  // namespace graf::trace
