#include <gtest/gtest.h>

#include "apps/catalog.h"
#include "autoscalers/firm_like.h"
#include "autoscalers/k8s_hpa.h"
#include "autoscalers/proactive_oracle.h"
#include "core/workload_analyzer.h"
#include "workload/open_loop.h"

namespace graf::autoscalers {
namespace {

TEST(K8sHpaFormula, ScalesProportionally) {
  // desired = ceil(ready * utilization / target)
  EXPECT_EQ(K8sHpa::desired_replicas(4, 1.0, 0.5, 0.1), 8);
  EXPECT_EQ(K8sHpa::desired_replicas(10, 0.25, 0.5, 0.1), 5);
  EXPECT_EQ(K8sHpa::desired_replicas(3, 0.8, 0.5, 0.1), 5);  // ceil(4.8)
}

TEST(K8sHpaFormula, ToleranceBandIsNoOp) {
  EXPECT_EQ(K8sHpa::desired_replicas(6, 0.52, 0.5, 0.1), 6);
  EXPECT_EQ(K8sHpa::desired_replicas(6, 0.46, 0.5, 0.1), 6);
}

TEST(K8sHpaFormula, ZeroUtilizationScalesToZeroBeforeClamp) {
  EXPECT_EQ(K8sHpa::desired_replicas(6, 0.0, 0.5, 0.1), 0);
  EXPECT_EQ(K8sHpa::desired_replicas(0, 1.0, 0.5, 0.1), 1);
}

sim::Cluster saturated_cluster(std::uint64_t seed) {
  auto topo = apps::online_boutique();
  return apps::make_cluster(topo, {.seed = seed});
}

TEST(K8sHpaIntegration, ScalesUpUnderLoad) {
  sim::Cluster c = saturated_cluster(3);
  K8sHpa hpa{{.target_utilization = 0.5}};
  hpa.attach(c, 200.0);
  workload::OpenLoopConfig g;
  g.rate = workload::Schedule::constant(200.0);
  g.api_weights = {1.0, 0.0, 0.0};
  workload::OpenLoopGenerator gen{c, g};
  gen.start(200.0);
  c.run_until(200.0);
  EXPECT_GT(c.total_ready_instances(), 20);
}

TEST(K8sHpaIntegration, StabilizationDelaysScaleDown) {
  sim::Cluster c = saturated_cluster(5);
  K8sHpa hpa{{.target_utilization = 0.5, .stabilization_window = 300.0}};
  hpa.attach(c, 1000.0);
  // Load for 120 s, then silence.
  workload::OpenLoopConfig g;
  g.rate = workload::Schedule::constant(150.0);
  g.api_weights = {1.0, 0.0, 0.0};
  workload::OpenLoopGenerator gen{c, g};
  gen.start(120.0);
  c.run_until(120.0);
  const int peak = c.total_ready_instances();
  ASSERT_GT(peak, 8);
  // Shortly after the load stops, the stabilization window still holds the
  // old recommendation: no scale-down yet.
  c.run_until(220.0);
  EXPECT_GE(c.total_ready_instances(), peak);
  // Well past the window, instances are released.
  c.run_until(700.0);
  EXPECT_LT(c.total_ready_instances(), peak);
}

TEST(K8sHpaIntegration, ScaleUpPolicyLimitsGrowthPerSync) {
  sim::Cluster c = saturated_cluster(7);
  K8sHpa hpa{{.target_utilization = 0.1, .sync_period = 15.0}};
  hpa.attach(c, 1000.0);
  workload::OpenLoopConfig g;
  g.rate = workload::Schedule::constant(400.0);
  g.api_weights = {1.0, 0.0, 0.0};
  workload::OpenLoopGenerator gen{c, g};
  gen.start(46.0);
  // After the first sync (t=15) each 2-instance service may grow to at most
  // max(2*2, 2+4) = 6 -> cluster total <= 36.
  c.run_until(16.0);
  EXPECT_LE(c.total_target_instances(), 36);
}

TEST(K8sHpaIntegration, ReattachKillsStaleTickChain) {
  // Regression: a second attach() used to leave the first attachment's tick
  // chain alive in the event queue, so the autoscaler stepped twice per sync
  // period forever after. The generation guard must kill the stale chain.
  sim::Cluster c = saturated_cluster(11);
  K8sHpa hpa{{}};  // sync_period = 15 s
  hpa.attach(c, 1000.0);
  c.run_until(50.0);  // first chain ticks at 15, 30, 45
  EXPECT_EQ(hpa.ticks(), 3u);
  hpa.attach(c, 1000.0);  // re-attach to the same cluster at t = 50
  c.run_until(141.0);     // exactly one live chain: ticks at 65, 80, ..., 140
  EXPECT_EQ(hpa.ticks(), 6u);
}

// Regression: during a scale-down with in-flight jobs, the metrics ticker
// used to divide the CPU of every still-draining pod by only the surviving
// pods' request. The 800% utilization reading made the HPA balloon a
// 4 -> 1 scale-down back up to 16 replicas. With retiring quota counted in
// the denominator the reading is 200% — exactly the work that still exists
// — and the HPA re-targets at most the original 4.
TEST(K8sHpaIntegration, NoSpuriousUpscaleWhileDrainingScaleDown) {
  std::vector<sim::ServiceConfig> svcs{
      {.name = "s", .unit_quota = 1000, .initial_instances = 4,
       .max_concurrency = 1, .demand_mean_ms = 10.0, .demand_sigma = 0.0}};
  sim::Cluster c{svcs, {sim::Api{"one", sim::CallNode{.service = 0}}}, {}};
  for (int i = 0; i < 4; ++i) c.service(0).submit(10000.0, [](double) {});
  c.service(0).scale_to(1);  // three busy instances keep draining
  ASSERT_EQ(c.service(0).ready_count(), 1);
  ASSERT_EQ(c.service(0).retiring_count(), 3);
  // Generous scale-up policy so the buggy 800% reading would really fire.
  K8sHpa hpa{{.target_utilization = 0.5,
              .sync_period = 1.0,
              .stabilization_window = 0.0,
              .scale_up_pods_limit = 100}};
  hpa.attach(c, 10.0);
  c.run_for(5.0);  // jobs run 10 s; every tick observes the drain
  EXPECT_GE(hpa.ticks(), 4u);
  EXPECT_LE(c.service(0).target_count(), 4);
}

// Blackout guard: an empty metrics window means "metrics API down", not
// "0% utilized" — the HPA must hold its scale instead of collapsing to min.
TEST(K8sHpaIntegration, HoldsScaleDuringTelemetryBlackout) {
  std::vector<sim::ServiceConfig> svcs{
      {.name = "s", .unit_quota = 1000, .initial_instances = 4,
       .max_concurrency = 1, .demand_mean_ms = 10.0, .demand_sigma = 0.0}};
  sim::Cluster c{svcs, {sim::Api{"one", sim::CallNode{.service = 0}}}, {}};
  c.set_telemetry_blackout(true);
  K8sHpa hpa{{.target_utilization = 0.5,
              .sync_period = 1.0,
              .stabilization_window = 0.0}};
  hpa.attach(c, 60.0);
  c.run_for(5.0);
  EXPECT_EQ(c.service(0).target_count(), 4);  // held, not dropped to 1
  c.set_telemetry_blackout(false);
  c.run_for(6.0);  // scraping resumes; idle service now really scales down
  EXPECT_EQ(c.service(0).target_count(), 1);
}

TEST(FirmLikeIntegration, ScalesUpOnTailRatio) {
  sim::Cluster c = saturated_cluster(9);
  FirmLike firm{{.sync_period = 5.0}};
  firm.attach(c, 200.0);
  workload::OpenLoopConfig g;
  g.rate = workload::Schedule::constant(250.0);
  g.api_weights = {1.0, 0.0, 0.0};
  workload::OpenLoopGenerator gen{c, g};
  gen.start(200.0);
  c.run_until(200.0);
  EXPECT_GT(c.total_ready_instances(), 12);
}

TEST(ProactiveOracleFormula, SizesFromDemand) {
  // qps * demand / (unit * headroom): 100 qps * 10 core-ms = 1 core;
  // 1-core units at 0.5 headroom -> 2 instances.
  EXPECT_EQ(ProactiveOracle::size_for(100.0, 10.0, 1.0, 0.5), 2);
  EXPECT_EQ(ProactiveOracle::size_for(0.0, 10.0, 1.0, 0.5), 1);  // min one
  EXPECT_EQ(ProactiveOracle::size_for(300.0, 16.0, 1.0, 0.6), 8);
}

TEST(ProactiveOracleIntegration, ScalesWholeChainAtOnce) {
  auto topo = apps::online_boutique();
  sim::Cluster c = apps::make_cluster(topo, {.seed = 11});
  std::vector<double> demands;
  for (const auto& svc : topo.services) demands.push_back(svc.demand_mean_ms);
  ProactiveOracle oracle{{}, core::expected_fanout(topo), demands};
  oracle.apply(c, {300.0, 0.0, 0.0});
  // Every service in the cart-page chain received a target immediately.
  for (int s = 0; s < static_cast<int>(c.service_count()); ++s)
    EXPECT_GE(c.service(s).target_count(), 2) << c.service(s).name();
  EXPECT_GT(c.service(4).target_count(), 4);  // recommendation is expensive
}

TEST(ProactiveOracleIntegration, RejectsShapeMismatch) {
  auto topo = apps::online_boutique();
  sim::Cluster c = apps::make_cluster(topo, {.seed = 13});
  ProactiveOracle oracle{{}, {{1.0, 1.0}}, {5.0, 5.0}};  // 2 services, 1 api
  EXPECT_THROW(oracle.attach(c, 100.0), std::invalid_argument);
}

}  // namespace
}  // namespace graf::autoscalers
