#include "common/rng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace graf {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a{123};
  Rng b{123};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a{1};
  Rng b{2};
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next_u64() == b.next_u64()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng r{7};
  for (int i = 0; i < 10000; ++i) {
    const double u = r.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng r{7};
  for (int i = 0; i < 1000; ++i) {
    const double u = r.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, UniformMeanApproximatesHalf) {
  Rng r{99};
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += r.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformIntCoversInclusiveRange) {
  Rng r{5};
  std::vector<int> seen(6, 0);
  for (int i = 0; i < 6000; ++i) {
    const auto v = r.uniform_int(2, 7);
    ASSERT_GE(v, 2);
    ASSERT_LE(v, 7);
    ++seen[static_cast<std::size_t>(v - 2)];
  }
  for (int c : seen) EXPECT_GT(c, 700);
}

TEST(Rng, UniformIntSingleValue) {
  Rng r{5};
  EXPECT_EQ(r.uniform_int(3, 3), 3);
}

TEST(Rng, UniformIntRejectsInvertedRange) {
  Rng r{5};
  EXPECT_THROW(r.uniform_int(4, 3), std::invalid_argument);
}

TEST(Rng, NormalMoments) {
  Rng r{11};
  double sum = 0.0;
  double sq = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = r.normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(Rng, NormalShifted) {
  Rng r{11};
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += r.normal(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.1);
}

TEST(Rng, ExponentialMeanIsInverseRate) {
  Rng r{13};
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += r.exponential(4.0);
  EXPECT_NEAR(sum / n, 0.25, 0.01);
}

TEST(Rng, ExponentialRejectsNonPositiveRate) {
  Rng r{13};
  EXPECT_THROW(r.exponential(0.0), std::invalid_argument);
  EXPECT_THROW(r.exponential(-1.0), std::invalid_argument);
}

TEST(Rng, LognormalMeanPreserving) {
  // exp(N(-s^2/2, s)) has mean 1.
  Rng r{17};
  const double s = 0.4;
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += r.lognormal(-0.5 * s * s, s);
  EXPECT_NEAR(sum / n, 1.0, 0.02);
}

TEST(Rng, ParetoAboveScale) {
  Rng r{19};
  for (int i = 0; i < 1000; ++i) EXPECT_GE(r.pareto(2.0, 3.0), 2.0);
}

TEST(Rng, BernoulliFrequency) {
  Rng r{23};
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i)
    if (r.bernoulli(0.3)) ++hits;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, WeightedIndexProportions) {
  Rng r{29};
  std::vector<double> w{1.0, 3.0, 0.0, 6.0};
  std::vector<int> counts(4, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[r.weighted_index(w)];
  EXPECT_EQ(counts[2], 0);
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.1, 0.01);
  EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.3, 0.01);
  EXPECT_NEAR(counts[3] / static_cast<double>(n), 0.6, 0.01);
}

TEST(Rng, WeightedIndexRejectsDegenerate) {
  Rng r{29};
  EXPECT_THROW(r.weighted_index({0.0, 0.0}), std::invalid_argument);
  EXPECT_THROW(r.weighted_index({1.0, -1.0}), std::invalid_argument);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng a{31};
  Rng fork = a.fork();
  // The fork should not replay the parent's stream.
  Rng parent_copy{31};
  parent_copy.next_u64();  // same position as `a`
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (fork.next_u64() == parent_copy.next_u64()) ++same;
  EXPECT_LT(same, 2);
}

}  // namespace
}  // namespace graf
