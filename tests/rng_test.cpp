#include "common/rng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

namespace graf {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a{123};
  Rng b{123};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a{1};
  Rng b{2};
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next_u64() == b.next_u64()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng r{7};
  for (int i = 0; i < 10000; ++i) {
    const double u = r.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng r{7};
  for (int i = 0; i < 1000; ++i) {
    const double u = r.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, UniformMeanApproximatesHalf) {
  Rng r{99};
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += r.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformIntCoversInclusiveRange) {
  Rng r{5};
  std::vector<int> seen(6, 0);
  for (int i = 0; i < 6000; ++i) {
    const auto v = r.uniform_int(2, 7);
    ASSERT_GE(v, 2);
    ASSERT_LE(v, 7);
    ++seen[static_cast<std::size_t>(v - 2)];
  }
  for (int c : seen) EXPECT_GT(c, 700);
}

TEST(Rng, UniformIntSingleValue) {
  Rng r{5};
  EXPECT_EQ(r.uniform_int(3, 3), 3);
}

TEST(Rng, UniformIntRejectsInvertedRange) {
  Rng r{5};
  EXPECT_THROW(r.uniform_int(4, 3), std::invalid_argument);
}

TEST(Rng, NormalMoments) {
  Rng r{11};
  double sum = 0.0;
  double sq = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = r.normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(Rng, NormalShifted) {
  Rng r{11};
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += r.normal(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.1);
}

TEST(Rng, ExponentialMeanIsInverseRate) {
  Rng r{13};
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += r.exponential(4.0);
  EXPECT_NEAR(sum / n, 0.25, 0.01);
}

TEST(Rng, ExponentialRejectsNonPositiveRate) {
  Rng r{13};
  EXPECT_THROW(r.exponential(0.0), std::invalid_argument);
  EXPECT_THROW(r.exponential(-1.0), std::invalid_argument);
}

TEST(Rng, LognormalMeanPreserving) {
  // exp(N(-s^2/2, s)) has mean 1.
  Rng r{17};
  const double s = 0.4;
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += r.lognormal(-0.5 * s * s, s);
  EXPECT_NEAR(sum / n, 1.0, 0.02);
}

TEST(Rng, ParetoAboveScale) {
  Rng r{19};
  for (int i = 0; i < 1000; ++i) EXPECT_GE(r.pareto(2.0, 3.0), 2.0);
}

TEST(Rng, BernoulliFrequency) {
  Rng r{23};
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i)
    if (r.bernoulli(0.3)) ++hits;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, WeightedIndexProportions) {
  Rng r{29};
  std::vector<double> w{1.0, 3.0, 0.0, 6.0};
  std::vector<int> counts(4, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[r.weighted_index(w)];
  EXPECT_EQ(counts[2], 0);
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.1, 0.01);
  EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.3, 0.01);
  EXPECT_NEAR(counts[3] / static_cast<double>(n), 0.6, 0.01);
}

TEST(Rng, WeightedIndexRejectsDegenerate) {
  Rng r{29};
  EXPECT_THROW(r.weighted_index({0.0, 0.0}), std::invalid_argument);
  EXPECT_THROW(r.weighted_index({1.0, -1.0}), std::invalid_argument);
}

TEST(Rng, UniformIntHugeSpanIsUnbiased) {
  // Regression for the modulo-bias bug: with span = 3 * 2^62 (lo =
  // INT64_MIN, hi = 2^62 - 1), plain `next_u64() % span` maps the wrapped
  // upper 2^62 raw values onto the FIRST third of the range, giving it
  // probability ~1/2 instead of 1/3. Rejection sampling restores ~1/3 per
  // third; the biased implementation fails this bound by a huge margin.
  Rng r{101};
  const std::int64_t lo = std::numeric_limits<std::int64_t>::min();
  const std::int64_t hi = (std::int64_t{1} << 62) - 1;
  const std::uint64_t span = static_cast<std::uint64_t>(hi) -
                             static_cast<std::uint64_t>(lo) + 1;  // 3 * 2^62
  const std::uint64_t third = span / 3;
  const int n = 30000;
  int first_third = 0;
  for (int i = 0; i < n; ++i) {
    const std::uint64_t off =
        static_cast<std::uint64_t>(r.uniform_int(lo, hi)) - static_cast<std::uint64_t>(lo);
    if (off < third) ++first_third;
  }
  // Unbiased: ~1/3 (sd ~= 0.27%). Biased: ~1/2. Split the difference.
  EXPECT_LT(first_third, n * 2 / 5);
  EXPECT_GT(first_third, n / 4);
}

TEST(Rng, UniformIntChiSquareUniform) {
  // 16 buckets, 160k draws: chi-square with 15 dof has 99.9th percentile
  // ~37.7; a generous 60 bound keeps the test deterministic-robust while
  // still catching any gross non-uniformity.
  Rng r{202};
  constexpr int kBuckets = 16;
  constexpr int kDraws = 160000;
  std::vector<int> counts(kBuckets, 0);
  for (int i = 0; i < kDraws; ++i)
    ++counts[static_cast<std::size_t>(r.uniform_int(0, kBuckets - 1))];
  const double expected = static_cast<double>(kDraws) / kBuckets;
  double chi2 = 0.0;
  for (int c : counts) {
    const double d = c - expected;
    chi2 += d * d / expected;
  }
  EXPECT_LT(chi2, 60.0);
}

TEST(Rng, UniformIntFullRangeDoesNotHang) {
  Rng r{303};
  const std::int64_t lo = std::numeric_limits<std::int64_t>::min();
  const std::int64_t hi = std::numeric_limits<std::int64_t>::max();
  for (int i = 0; i < 100; ++i) {
    const std::int64_t v = r.uniform_int(lo, hi);
    EXPECT_GE(v, lo);
    EXPECT_LE(v, hi);
  }
}

TEST(Rng, DeriveSeedDeterministicAndStreamSeparated) {
  EXPECT_EQ(derive_seed(42, 7), derive_seed(42, 7));
  // Adjacent streams (and adjacent bases) must yield unrelated generators.
  Rng a{derive_seed(42, 7)};
  Rng b{derive_seed(42, 8)};
  Rng c{derive_seed(43, 7)};
  int same_ab = 0;
  int same_ac = 0;
  for (int i = 0; i < 64; ++i) {
    const std::uint64_t av = a.next_u64();
    if (av == b.next_u64()) ++same_ab;
    if (av == c.next_u64()) ++same_ac;
  }
  EXPECT_LT(same_ab, 2);
  EXPECT_LT(same_ac, 2);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng a{31};
  Rng fork = a.fork();
  // The fork should not replay the parent's stream.
  Rng parent_copy{31};
  parent_copy.next_u64();  // same position as `a`
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (fork.next_u64() == parent_copy.next_u64()) ++same;
  EXPECT_LT(same, 2);
}

}  // namespace
}  // namespace graf
