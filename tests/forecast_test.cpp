// Workload forecasting (src/forecast) + its serving infrastructure
// (src/serve/forecast_store): the Holt-Winters baseline, the learned linear
// autoregressor on the nn tape arenas, the ForecastGate's
// max(observed, predicted) pre-warm and never-throw degradation contract,
// checkpoint save/load with CRC verification, the versioned
// publish/promote/rollback registry, the plan-cache key regression
// (a cached observed-load plan must never answer a higher forecast-adjusted
// demand), and the DESIGN.md §3.11 determinism contract: forecast-enabled
// fleet runs replay bit-identically at GRAF_THREADS=1 and 8.
#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "core/configuration_solver.h"
#include "core/graf_controller.h"
#include "core/resource_controller.h"
#include "core/workload_analyzer.h"
#include "fleet/fleet_server.h"
#include "forecast/ar_forecaster.h"
#include "forecast/forecaster.h"
#include "forecast/gate.h"
#include "forecast/holt_winters.h"
#include "gnn/latency_model.h"
#include "serve/forecast_store.h"
#include "telemetry/metrics.h"

namespace graf::forecast {
namespace {

std::uint64_t bits(double v) { return std::bit_cast<std::uint64_t>(v); }

// --- HoltWinters ------------------------------------------------------------

TEST(HoltWinters, NotReadyUntilMinHistoryThenValid) {
  HoltWinters hw;
  EXPECT_FALSE(hw.ready());
  EXPECT_FALSE(hw.predict(1).valid) << "predict before ready must be invalid";
  for (int i = 0; i < 4; ++i) hw.observe(100.0);
  EXPECT_TRUE(hw.ready());
  const Forecast fc = hw.predict(1);
  EXPECT_TRUE(fc.valid);
  EXPECT_NEAR(fc.mean, 100.0, 1.0);
  EXPECT_LE(fc.lo, fc.mean);
  EXPECT_GE(fc.hi, fc.mean);
}

TEST(HoltWinters, TracksLinearTrend) {
  HoltWinters hw;
  for (int t = 0; t < 40; ++t) hw.observe(100.0 + 5.0 * t);
  // Last observation is 295; two steps ahead the truth is 305.
  const Forecast fc = hw.predict(2);
  ASSERT_TRUE(fc.valid);
  EXPECT_NEAR(fc.mean, 305.0, 5.0);
  EXPECT_NEAR(hw.trend(), 5.0, 0.5);
}

TEST(HoltWinters, SeasonalComponentTracksPeriodicPattern) {
  HoltWintersConfig cfg;
  cfg.season = 4;
  HoltWinters hw{cfg};
  const double pattern[4] = {80.0, 120.0, 100.0, 60.0};
  for (int t = 0; t < 48; ++t) hw.observe(pattern[t % 4]);
  // After 12 full seasons, a one-period-ahead forecast lands near the same
  // phase's value for every phase.
  for (std::size_t h = 1; h <= 4; ++h) {
    const Forecast fc = hw.predict(h);
    ASSERT_TRUE(fc.valid);
    EXPECT_NEAR(fc.mean, pattern[(48 - 1 + h) % 4], 12.0) << "h=" << h;
  }
}

TEST(HoltWinters, BandWidensWithHorizon) {
  HoltWinters hw;
  Rng rng{11};
  for (int t = 0; t < 60; ++t) hw.observe(100.0 + rng.uniform(-10.0, 10.0));
  const Forecast h1 = hw.predict(1);
  const Forecast h4 = hw.predict(4);
  ASSERT_TRUE(h1.valid);
  ASSERT_TRUE(h4.valid);
  EXPECT_GT(hw.sigma(), 0.0);
  EXPECT_GT(h4.hi - h4.lo, h1.hi - h1.lo);
}

TEST(HoltWinters, IgnoresNonFiniteObservations) {
  HoltWinters hw;
  for (int i = 0; i < 8; ++i) hw.observe(50.0);
  const Forecast before = hw.predict(2);
  hw.observe(std::nan(""));
  hw.observe(std::numeric_limits<double>::infinity());
  EXPECT_EQ(hw.observations(), 8u) << "poisoned scrapes must not be consumed";
  const Forecast after = hw.predict(2);
  EXPECT_EQ(bits(before.mean), bits(after.mean));
  EXPECT_EQ(bits(before.hi), bits(after.hi));
}

TEST(HoltWinters, BitIdenticalAcrossInstancesAndReset) {
  HoltWintersConfig cfg;
  cfg.season = 6;
  HoltWinters a{cfg}, b{cfg};
  Rng rng{3};
  std::vector<double> series;
  for (int t = 0; t < 50; ++t)
    series.push_back(60.0 + 20.0 * std::sin(t / 3.0) + rng.uniform(-3.0, 3.0));
  for (double v : series) a.observe(v);
  for (double v : series) b.observe(v);
  for (std::size_t h : {1u, 2u, 5u}) {
    EXPECT_EQ(bits(a.predict(h).mean), bits(b.predict(h).mean));
    EXPECT_EQ(bits(a.predict(h).hi), bits(b.predict(h).hi));
  }
  // reset() returns to the virgin state: replaying the series reproduces
  // the same predictions bit-for-bit.
  const Forecast before = a.predict(3);
  a.reset();
  EXPECT_FALSE(a.ready());
  for (double v : series) a.observe(v);
  EXPECT_EQ(bits(before.mean), bits(a.predict(3).mean));
}

// --- ArForecaster -----------------------------------------------------------

ArConfig quick_ar() {
  ArConfig cfg;
  cfg.order = 4;
  cfg.window = 48;
  cfg.refit_every = 8;
  cfg.iterations = 400;
  cfg.lr = 0.02;
  cfg.seed = 5;
  cfg.min_history = 16;
  return cfg;
}

TEST(ArForecaster, LearnsLinearRampBetterThanPersistence) {
  ArForecaster ar{quick_ar()};
  const double slope = 2.0;
  double last = 0.0;
  for (int t = 0; t < 160; ++t) {
    last = 100.0 + slope * t;
    ar.observe(last);
  }
  ASSERT_TRUE(ar.ready());
  EXPECT_GE(ar.refits(), 10u);
  const Forecast fc = ar.predict(1);
  ASSERT_TRUE(fc.valid);
  // Persistence ("tomorrow = today") is off by `slope` per step; the fitted
  // AR must beat it.
  EXPECT_LT(std::abs(fc.mean - (last + slope)), slope);
  EXPECT_LE(fc.lo, fc.mean);
  EXPECT_GE(fc.hi, fc.mean);
}

TEST(ArForecaster, MultiStepForecastExtendsTheRamp) {
  ArForecaster ar{quick_ar()};
  for (int t = 0; t < 160; ++t) ar.observe(100.0 + 2.0 * t);
  const Forecast h1 = ar.predict(1);
  const Forecast h4 = ar.predict(4);
  ASSERT_TRUE(h1.valid);
  ASSERT_TRUE(h4.valid);
  EXPECT_GT(h4.mean, h1.mean) << "a rising series must forecast higher further out";
  EXPECT_GE(h4.hi - h4.lo, h1.hi - h1.lo) << "bands widen with horizon";
}

TEST(ArForecaster, BitIdenticalForSameConfigSeedAndSeries) {
  ArForecaster a{quick_ar()}, b{quick_ar()};
  Rng rng{17};
  for (int t = 0; t < 120; ++t) {
    const double v = 80.0 + 30.0 * std::sin(t / 5.0) + rng.uniform(-4.0, 4.0);
    a.observe(v);
    b.observe(v);
  }
  ASSERT_TRUE(a.ready());
  for (std::size_t h : {1u, 2u, 3u}) {
    EXPECT_EQ(bits(a.predict(h).mean), bits(b.predict(h).mean)) << "h=" << h;
    EXPECT_EQ(bits(a.predict(h).hi), bits(b.predict(h).hi)) << "h=" << h;
  }
  // Different seed => different jittered init => a distinct stream.
  ArConfig other = quick_ar();
  other.seed = 99;
  ArForecaster c{other};
  Rng rng2{17};
  for (int t = 0; t < 120; ++t)
    c.observe(80.0 + 30.0 * std::sin(t / 5.0) + rng2.uniform(-4.0, 4.0));
  EXPECT_NE(bits(a.predict(1).mean), bits(c.predict(1).mean));
}

TEST(ArForecaster, CopyPredictsIdenticallyThenDivergesIndependently) {
  ArForecaster a{quick_ar()};
  for (int t = 0; t < 80; ++t) a.observe(50.0 + 1.5 * t);
  ArForecaster copy{a};
  EXPECT_EQ(bits(a.predict(2).mean), bits(copy.predict(2).mean));
  EXPECT_EQ(copy.observations(), a.observations());
  // The copy owns its state: feeding it more data must not touch the original.
  const Forecast original = a.predict(2);
  for (int t = 80; t < 120; ++t) copy.observe(500.0);
  EXPECT_EQ(bits(a.predict(2).mean), bits(original.mean));
}

TEST(ArForecaster, IgnoresNonFiniteAndResets) {
  ArForecaster ar{quick_ar()};
  for (int t = 0; t < 40; ++t) ar.observe(100.0);
  const std::size_t n = ar.observations();
  ar.observe(std::nan(""));
  EXPECT_EQ(ar.observations(), n);
  ar.reset();
  EXPECT_FALSE(ar.ready());
  EXPECT_EQ(ar.observations(), 0u);
  EXPECT_FALSE(ar.predict(1).valid);
}

// --- ForecastGate -----------------------------------------------------------

TEST(ForecastGate, FallsBackToObservedWhileNotReady) {
  telemetry::MetricsRegistry metrics;
  ForecastGate gate{std::make_shared<HoltWinters>(), {}};
  gate.set_metrics(&metrics);
  const std::vector<Qps> observed{40.0, 20.0};
  const auto planned = gate.plan_qps(observed);
  EXPECT_EQ(planned, observed);
  EXPECT_EQ(gate.fallbacks(), 1u);
  EXPECT_EQ(gate.prewarms(), 0u);
  EXPECT_EQ(metrics.counter("forecast.fallbacks_total", {{"cause", "not_ready"}})
                .value(),
            1.0);
}

TEST(ForecastGate, PrewarmsRisingLoadPreservingApiMix) {
  telemetry::MetricsRegistry metrics;
  ForecastGateConfig cfg;
  cfg.horizon_steps = 2;
  ForecastGate gate{std::make_shared<HoltWinters>(), cfg};
  gate.set_metrics(&metrics);
  std::vector<Qps> planned;
  std::vector<Qps> observed;
  for (int t = 0; t < 20; ++t) {
    // Steady climb, 3:1 API mix.
    const double total = 60.0 + 6.0 * t;
    observed = {0.75 * total, 0.25 * total};
    planned = gate.plan_qps(observed);
  }
  ASSERT_EQ(planned.size(), 2u);
  EXPECT_GT(gate.prewarms(), 0u);
  EXPECT_GT(gate.last_boost(), 1.0);
  const double total = planned[0] + planned[1];
  EXPECT_GT(total, observed[0] + observed[1])
      << "a rising series must plan above the observation";
  EXPECT_NEAR(planned[0] / total, 0.75, 1e-9) << "API mix must be preserved";
  EXPECT_GT(metrics.counter("forecast.predictions_total").value(), 0.0);
  EXPECT_GT(metrics.counter("forecast.prewarm_ticks").value(), 0.0);
  EXPECT_GT(metrics.gauge("forecast.boost").value(), 1.0);
}

TEST(ForecastGate, NeverPlansBelowObserved) {
  ForecastGate gate{std::make_shared<HoltWinters>(), {}};
  std::vector<Qps> planned;
  std::vector<Qps> observed;
  for (int t = 0; t < 30; ++t) {
    // Falling series: the forecast is below the observation, so the max()
    // must keep the plan at the observed level, never below.
    observed = {300.0 - 8.0 * t};
    planned = gate.plan_qps(observed);
    ASSERT_EQ(planned.size(), 1u);
    EXPECT_GE(planned[0], observed[0]);
  }
  EXPECT_EQ(planned, observed) << "a falling forecast plans exactly the observation";
}

/// Deliberately misbehaving forecaster: predicts an absurd multiple, or
/// throws, per the knobs — for exercising the gate's degradation contract.
class EvilForecaster final : public Forecaster {
 public:
  bool throw_on_observe = false;
  double predicted = 1e9;

  void observe(double) override {
    if (throw_on_observe) throw std::runtime_error{"forecaster bug"};
    ++count_;
  }
  Forecast predict(std::size_t) const override {
    return {predicted, predicted, predicted, true};
  }
  bool ready() const override { return count_ > 0; }
  void reset() override { count_ = 0; }
  std::size_t observations() const override { return count_; }
  std::string name() const override { return "evil"; }

 private:
  std::size_t count_ = 0;
};

TEST(ForecastGate, SanityCapClampsAbsurdForecast) {
  telemetry::MetricsRegistry metrics;
  ForecastGateConfig cfg;
  cfg.max_boost = 3.0;
  ForecastGate gate{std::make_shared<EvilForecaster>(), cfg};
  gate.set_metrics(&metrics);
  gate.plan_qps({100.0});  // ready() arms after the first observation
  const auto planned = gate.plan_qps({100.0});
  ASSERT_EQ(planned.size(), 1u);
  EXPECT_DOUBLE_EQ(planned[0], 300.0) << "boost must clamp at max_boost";
  // Both ticks predicted the absurd value and both were clamped.
  EXPECT_EQ(metrics.counter("forecast.boost_capped_total").value(), 2.0);
}

TEST(ForecastGate, ThrowingForecasterDegradesToPlanAlone) {
  telemetry::MetricsRegistry metrics;
  auto evil = std::make_shared<EvilForecaster>();
  evil->throw_on_observe = true;
  ForecastGate gate{evil, {}};
  gate.set_metrics(&metrics);
  const std::vector<Qps> observed{70.0, 30.0};
  std::vector<Qps> planned;
  EXPECT_NO_THROW(planned = gate.plan_qps(observed))
      << "plan_qps must never throw (degradation contract)";
  EXPECT_EQ(planned, observed);
  EXPECT_EQ(gate.fallbacks(), 1u);
  EXPECT_EQ(
      metrics.counter("forecast.fallbacks_total", {{"cause", "error"}}).value(),
      1.0);
}

TEST(ForecastGate, ZeroOrNonFiniteTotalBypassesTheForecaster) {
  auto hw = std::make_shared<HoltWinters>();
  ForecastGate gate{hw, {}};
  EXPECT_EQ(gate.plan_qps({0.0, 0.0}), (std::vector<Qps>{0.0, 0.0}));
  EXPECT_EQ(hw->observations(), 0u)
      << "a blackout tick must not enter the series as a real zero";
}

TEST(ForecastGate, SpecFactoryBuildsTheRequestedKind) {
  ForecastSpec spec;
  spec.kind = ForecastKind::kHoltWinters;
  EXPECT_EQ(make_forecaster(spec)->name(), "holt_winters");
  spec.kind = ForecastKind::kAutoregressive;
  EXPECT_EQ(make_forecaster(spec)->name(), "ar_linear");
}

// --- Checkpoints ------------------------------------------------------------

ArForecaster trained_ar() {
  ArForecaster ar{quick_ar()};
  for (int t = 0; t < 120; ++t) ar.observe(90.0 + 1.8 * t);
  return ar;
}

TEST(ForecastCheckpoint, RoundTripPredictsBitIdentically) {
  const ArForecaster original = trained_ar();
  serve::ForecastMeta meta;
  meta.application = "checkout";
  meta.slo_ms = 200.0;
  meta.created_sim_time = 123.0;

  std::stringstream buf;
  serve::save_forecast_checkpoint(buf, original, meta);
  serve::LoadedForecast loaded = serve::load_forecast_checkpoint(buf);

  EXPECT_EQ(loaded.meta.application, "checkout");
  EXPECT_DOUBLE_EQ(loaded.meta.slo_ms, 200.0);
  EXPECT_DOUBLE_EQ(loaded.meta.created_sim_time, 123.0);
  EXPECT_EQ(loaded.model.observations(), original.observations());
  EXPECT_TRUE(loaded.model.ready()) << "restored forecaster is warm immediately";
  for (std::size_t h : {1u, 2u, 4u}) {
    EXPECT_EQ(bits(original.predict(h).mean), bits(loaded.model.predict(h).mean));
    EXPECT_EQ(bits(original.predict(h).hi), bits(loaded.model.predict(h).hi));
  }
  // The restored instance keeps learning from where it left off.
  loaded.model.observe(300.0);
  EXPECT_EQ(loaded.model.observations(), original.observations() + 1);
}

TEST(ForecastCheckpoint, DetectsCorruptionTruncationAndBadMagic) {
  const ArForecaster ar = trained_ar();
  std::stringstream buf;
  serve::save_forecast_checkpoint(buf, ar, {});
  const std::string good = buf.str();

  {  // flipped payload byte -> CRC mismatch
    std::string bad = good;
    bad[bad.size() / 2] ^= 0x01;
    std::stringstream in{bad};
    EXPECT_THROW(serve::load_forecast_checkpoint(in), serve::CheckpointError);
  }
  {  // truncated stream
    std::stringstream in{good.substr(0, good.size() - 9)};
    EXPECT_THROW(serve::load_forecast_checkpoint(in), serve::CheckpointError);
  }
  {  // a latency-model checkpoint magic is not a forecast checkpoint
    std::string bad = good;
    bad.replace(0, 8, "GRAFCKPT");
    std::stringstream in{bad};
    EXPECT_THROW(serve::load_forecast_checkpoint(in), serve::CheckpointError);
  }
}

// --- ForecastRegistry -------------------------------------------------------

TEST(ForecastRegistry, PublishPromoteRollbackKeepsHandleInSync) {
  serve::ForecastRegistry registry;
  const serve::ModelKey key{"checkout", 200.0};

  ArForecaster v1 = trained_ar();
  ArConfig cfg2 = quick_ar();
  cfg2.seed = 42;
  ArForecaster v2{cfg2};
  for (int t = 0; t < 120; ++t) v2.observe(500.0 - 2.0 * t);

  const std::uint64_t id1 = registry.publish(key, v1, {});
  const std::uint64_t id2 = registry.publish(key, v2, {});
  EXPECT_EQ(id1, 1u);
  EXPECT_EQ(id2, 2u);
  EXPECT_EQ(registry.versions(key), (std::vector<std::uint64_t>{1, 2}));
  EXPECT_EQ(registry.active(key), nullptr) << "publish must not auto-promote";

  serve::ForecastHandle handle;
  registry.attach_handle(key, &handle);
  EXPECT_TRUE(handle.empty());

  ASSERT_TRUE(registry.promote(key, id1));
  EXPECT_EQ(registry.active_version(key), id1);
  auto served = handle.acquire();
  ASSERT_NE(served, nullptr);
  EXPECT_EQ(bits(served->predict(2).mean), bits(v1.predict(2).mean));
  EXPECT_EQ(registry.active_meta(key).application, "checkout");

  ASSERT_TRUE(registry.promote(key, id2));
  EXPECT_EQ(bits(handle.acquire()->predict(2).mean), bits(v2.predict(2).mean));

  ASSERT_TRUE(registry.rollback(key));
  EXPECT_EQ(registry.active_version(key), id1);
  EXPECT_EQ(bits(handle.acquire()->predict(2).mean), bits(v1.predict(2).mean));

  EXPECT_FALSE(registry.promote(key, 99u));
  EXPECT_FALSE(registry.rollback(key)) << "history exhausted";
  registry.detach_handle(key, &handle);
}

TEST(ForecastRegistry, StoreDirPersistsEveryVersionAndRestores) {
  const std::string dir = ::testing::TempDir();
  serve::ForecastRegistry registry{dir};
  const serve::ModelKey key{"search", 150.0};
  const ArForecaster original = trained_ar();
  const std::uint64_t v = registry.publish(key, original, {});
  const std::string path = registry.checkpoint_path(key, v);
  ASSERT_FALSE(path.empty());

  // A second registry (fresh process) restores the persisted version and
  // serves bit-identical predictions.
  serve::ForecastRegistry reborn;
  const std::uint64_t rv = reborn.restore(key, path);
  ASSERT_TRUE(reborn.promote(key, rv));
  auto active = reborn.active(key);
  ASSERT_NE(active, nullptr);
  EXPECT_EQ(bits(active->predict(2).mean), bits(original.predict(2).mean));
  EXPECT_DOUBLE_EQ(reborn.active_meta(key).slo_ms, 150.0);
  std::remove(path.c_str());
}

TEST(ForecastGate, HandleSwapServesThePromotedForecaster) {
  serve::ForecastRegistry registry;
  const serve::ModelKey key{"checkout", 200.0};
  serve::ForecastHandle handle;
  registry.attach_handle(key, &handle);

  telemetry::MetricsRegistry metrics;
  ForecastGate gate{std::make_shared<HoltWinters>(), {}};
  gate.set_metrics(&metrics);
  gate.set_handle(&handle);

  // Nothing promoted yet: the gate keeps its constructor forecaster.
  gate.plan_qps({50.0});
  EXPECT_EQ(gate.forecaster().name(), "holt_winters");

  const std::uint64_t v = registry.publish(key, trained_ar(), {});
  ASSERT_TRUE(registry.promote(key, v));
  gate.plan_qps({50.0});
  EXPECT_EQ(gate.forecaster().name(), "ar_linear")
      << "a promote must hot-swap the gate's forecaster on the next tick";
  EXPECT_EQ(metrics.counter("forecast.handle_swaps_total").value(), 1.0);
  registry.detach_handle(key, &handle);
}

// --- Plan-cache key regression + fleet determinism --------------------------
//
// Shared tiny trained model, one expensive fit for the rest of the suite
// (the fleet_test.cpp fixture pattern).

gnn::Dag chain2() {
  gnn::Dag d;
  d.add_node("front");
  d.add_node("back");
  d.add_edge(0, 1);
  return d;
}

double truth_ms(const std::vector<double>& w, const std::vector<double>& q,
                const std::vector<double>& demand) {
  double total = 0.0;
  for (std::size_t i = 0; i < w.size(); ++i) {
    const double cores = q[i] / 1000.0;
    const double base = demand[i] / std::min(cores, 1.0);
    const double capacity = cores * 1000.0 / demand[i];
    const double utilization = std::min(w[i] / capacity, 0.95);
    total += base / (1.0 - utilization);
  }
  return total;
}

const std::vector<double> kDemand{20.0, 40.0};

gnn::Dataset demand_dataset(std::size_t n, std::uint64_t seed) {
  Rng rng{seed};
  gnn::Dataset out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    gnn::Sample s;
    const double w = rng.uniform(20.0, 100.0);
    s.workload = {w, w};
    s.quota = {rng.uniform(300.0, 2000.0), rng.uniform(300.0, 2000.0)};
    s.latency_ms = truth_ms(s.workload, s.quota, kDemand) * rng.lognormal(0.0, 0.03);
    out.push_back(std::move(s));
  }
  return out;
}

gnn::LatencyModel& trained_model() {
  static gnn::LatencyModel m = [] {
    gnn::MpnnConfig cfg{.node_features = 4, .embed_dim = 8, .mpnn_hidden = 8,
                        .readout_hidden = 24, .message_steps = 2,
                        .dropout_p = 0.05, .use_mpnn = true};
    gnn::LatencyModel lm{chain2(), cfg, 7};
    gnn::TrainConfig tcfg{.iterations = 900, .batch_size = 64, .lr = 3e-3,
                          .eval_every = 100, .seed = 3};
    lm.fit(demand_dataset(1200, 1), demand_dataset(200, 2), tcfg);
    return lm;
  }();
  return m;
}

TEST(PlanCacheForecast, BoostedDemandNeverServedFromObservedEntry) {
  core::SolverConfig scfg;
  scfg.max_iterations = 200;
  core::WorkloadAnalyzer analyzer{1, 2};
  analyzer.set_fanout({{1.0, 1.0}});
  core::ConfigurationSolver solver{trained_model(), scfg};
  core::ResourceController controller{trained_model(), solver, analyzer,
                                      {200.0, 200.0}, {2000.0, 2000.0},
                                      {500.0, 500.0}};
  controller.set_training_reference(demand_dataset(64, 11));

  const std::vector<Qps> observed{60.0};
  controller.plan(observed, 1000.0);
  EXPECT_EQ(controller.plan_cache_misses(), 1u);
  controller.plan(observed, 1000.0);
  EXPECT_EQ(controller.plan_cache_hits(), 1u) << "repeat observation hits";

  // The forecast gate hands plan() the *boosted* workload. The cache
  // quantizes into ~2% buckets, so a 30% pre-warm boost must land in a
  // different key — the cached observed-load plan must never answer the
  // higher forecast-adjusted demand.
  ForecastGateConfig gcfg;
  gcfg.horizon_steps = 2;
  ForecastGate gate{std::make_shared<HoltWinters>(), gcfg};
  std::vector<Qps> boosted;
  for (int t = 0; t < 12; ++t)
    boosted = gate.plan_qps({38.0 + 2.0 * t});  // steady climb ending at 60
  ASSERT_GT(gate.last_boost(), 1.02) << "scenario must actually boost";

  const std::uint64_t hits_before = controller.plan_cache_hits();
  const core::AllocationPlan boosted_plan = controller.plan(boosted, 1000.0);
  EXPECT_EQ(controller.plan_cache_hits(), hits_before)
      << "forecast-adjusted demand must miss the observed-load cache entry";
  ASSERT_FALSE(boosted_plan.degraded)
      << "boosted demand must stay in the model's feasible range";
  const core::AllocationPlan observed_plan = controller.plan(observed, 1000.0);
  double boosted_total = 0.0, observed_total = 0.0;
  for (Millicores q : boosted_plan.quota) boosted_total += q;
  for (Millicores q : observed_plan.quota) observed_total += q;
  EXPECT_GT(boosted_total, observed_total)
      << "planning for the boosted demand must buy more capacity";
}

struct ThreadGuard {
  explicit ThreadGuard(std::size_t n) { set_global_threads(n); }
  ~ThreadGuard() { set_global_threads(0); }
};

fleet::TenantSpec forecast_spec(const std::string& app, double slo_ms,
                                ForecastKind kind) {
  fleet::TenantSpec spec;
  spec.application = app;
  spec.slo_ms = slo_ms;
  spec.model = &trained_model();
  spec.meta = {.train_samples = 1200, .val_error_pct = 10.0,
               .created_sim_time = 0.0};
  spec.lo = {200.0, 200.0};
  spec.hi = {2000.0, 2000.0};
  spec.unit = {500.0, 500.0};
  spec.fanout = {{1.0, 1.0}};
  spec.training_reference = demand_dataset(64, 11);
  spec.solver.max_iterations = 200;
  spec.forecast.enabled = true;
  spec.forecast.kind = kind;
  spec.forecast.ar = quick_ar();
  spec.forecast.ar.min_history = 8;
  spec.forecast.ar.refit_every = 4;
  return spec;
}

/// Exact-bits digest of a forecast-enabled 2-tenant run (one Holt-Winters,
/// one AR): ramp + doubling surge traffic. Two replays match iff every plan
/// is bit-identical.
std::string run_forecast_fleet_scenario() {
  fleet::FleetServer fleet;
  const fleet::TenantId hw =
      fleet.add_tenant(forecast_spec("hw-app", 200.0, ForecastKind::kHoltWinters));
  const fleet::TenantId ar =
      fleet.add_tenant(forecast_spec("ar-app", 150.0, ForecastKind::kAutoregressive));

  std::ostringstream out;
  auto token = fleet.subscribe([&](const fleet::PlanUpdate& u) {
    out << u.application << '#' << u.seq << ':';
    for (int inst : u.plan.instances) out << inst << ',';
    for (Millicores q : u.plan.quota)
      out << std::hex << std::bit_cast<std::uint64_t>(q) << std::dec << ',';
    out << (u.degraded ? "!D" : "") << ';';
  });

  for (int step = 0; step < 30; ++step) {
    const double now = 5.0 * (step + 1);
    // Ramp for 20 steps, then a doubling surge.
    const double base = step < 20 ? 40.0 + 2.0 * step : 160.0;
    fleet.push({.tenant = hw, .now = now, .api_qps = {base}, .samples = {}});
    fleet.push({.tenant = ar, .now = now, .api_qps = {0.8 * base}, .samples = {}});
    const auto stats = fleet.step();
    out << "s" << step << "=" << stats.planned << "/" << stats.coasted << ";";
  }
  // The digest must also pin the forecaster outputs themselves.
  for (const fleet::TenantId id : {hw, ar}) {
    ForecastGate* gate = fleet.tenant(id)->forecast_gate();
    out << "|prewarms=" << gate->prewarms() << ",boost="
        << std::hex << std::bit_cast<std::uint64_t>(gate->last_boost())
        << std::dec;
  }
  return out.str();
}

TEST(FleetForecast, ScenarioReplaysBitIdenticallyAcrossThreadCounts) {
  std::string at1, at8;
  {
    ThreadGuard guard{1};
    at1 = run_forecast_fleet_scenario();
  }
  {
    ThreadGuard guard{8};
    at8 = run_forecast_fleet_scenario();
  }
  EXPECT_FALSE(at1.empty());
  EXPECT_NE(at1.find("prewarms="), std::string::npos);
  EXPECT_EQ(at1, at8) << "forecast-enabled fleet runs must be bit-identical "
                         "at any GRAF_THREADS (DESIGN.md §3.11)";
}

TEST(FleetForecast, ForecastTenantPrewarmsAndExportsMetrics) {
  fleet::FleetServer fleet;
  const fleet::TenantId id =
      fleet.add_tenant(forecast_spec("ramp", 200.0, ForecastKind::kHoltWinters));
  for (int step = 0; step < 20; ++step) {
    fleet.push({.tenant = id,
                .now = 5.0 * (step + 1),
                .api_qps = {40.0 + 8.0 * step},
                .samples = {}});
    fleet.step();
  }
  ForecastGate* gate = fleet.tenant(id)->forecast_gate();
  ASSERT_NE(gate, nullptr);
  EXPECT_GT(gate->prewarms(), 0u);
  const auto snap = fleet.metrics_snapshot();
  const auto* prewarms = snap.find("forecast.prewarm_ticks");
  ASSERT_NE(prewarms, nullptr) << "tenant forecast metrics must merge into "
                                  "the fleet snapshot";
  EXPECT_GT(prewarms->value, 0.0);

  // A tenant without forecast mode has no gate.
  fleet::TenantSpec plain = forecast_spec("plain", 100.0, ForecastKind::kHoltWinters);
  plain.forecast.enabled = false;
  const fleet::TenantId pid = fleet.add_tenant(plain);
  EXPECT_EQ(fleet.tenant(pid)->forecast_gate(), nullptr);
}

// --- GrafController wiring --------------------------------------------------

TEST(GrafControllerForecast, EnableForecastWiresGateAndMetrics) {
  core::SolverConfig scfg;
  scfg.max_iterations = 200;
  core::WorkloadAnalyzer analyzer{1, 2};
  analyzer.set_fanout({{1.0, 1.0}});
  core::ConfigurationSolver solver{trained_model(), scfg};
  core::ResourceController controller{trained_model(), solver, analyzer,
                                      {200.0, 200.0}, {2000.0, 2000.0},
                                      {500.0, 500.0}};
  core::GrafController graf{controller, {.slo_ms = 200.0}};
  EXPECT_EQ(graf.forecast_gate(), nullptr);

  telemetry::MetricsRegistry metrics;
  graf.set_metrics(&metrics);

  ForecastSpec spec;
  spec.kind = ForecastKind::kHoltWinters;
  graf.enable_forecast(spec);
  ASSERT_NE(graf.forecast_gate(), nullptr);

  // The gate inherited the controller's registry: its instruments are live.
  for (int t = 0; t < 12; ++t)
    graf.forecast_gate()->plan_qps({50.0 + 10.0 * t});
  EXPECT_GT(metrics.counter("forecast.predictions_total").value(), 0.0);

  serve::ForecastHandle handle;
  graf.set_forecast_handle(&handle);  // must not crash with an empty handle
  graf.forecast_gate()->plan_qps({200.0});
}

}  // namespace
}  // namespace graf::forecast
