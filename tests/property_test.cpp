// Parameterized property sweeps across the numeric stack: autodiff
// gradients on random composite graphs, loss-function shape invariants, and
// solver feasibility across random SLOs.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "nn/autodiff.h"
#include "nn/layers.h"
#include "nn/loss.h"

namespace graf::nn {
namespace {

// ---- Random composite-graph gradcheck ---------------------------------------

class RandomGraphGradcheck : public ::testing::TestWithParam<int> {};

TEST_P(RandomGraphGradcheck, MatchesFiniteDifferences) {
  Rng rng{static_cast<std::uint64_t>(GetParam()) * 7919 + 3};
  const std::size_t rows = 1 + static_cast<std::size_t>(rng.uniform_int(1, 3));
  const std::size_t cols = 1 + static_cast<std::size_t>(rng.uniform_int(1, 3));

  Tensor x0{rows, cols};
  for (std::size_t i = 0; i < x0.size(); ++i) x0.data()[i] = rng.uniform(0.3, 2.0);
  const Tensor w = [&] {
    Tensor t{cols, 2};
    for (std::size_t i = 0; i < t.size(); ++i) t.data()[i] = rng.uniform(-1.0, 1.0);
    return t;
  }();

  // f(x) = mean(asym_huber(relu(xW)*0.7 - 0.2)) + 0.1*sum(1/x)
  auto f = [&](Tape& t, Var x) {
    Var h = relu(matmul(x, t.constant(w)));
    Var g = add_scalar(scale(h, 0.7), -0.2);
    Var a = mean_all(asym_huber(g, 0.3, 0.1));
    Var b = scale(sum_all(reciprocal(x)), 0.1);
    return add(a, b);
  };

  Tape tape;
  Var x = tape.leaf(x0);
  tape.backward(f(tape, x));
  const Tensor analytic = tape.grad(x);

  const double eps = 1e-6;
  for (std::size_t i = 0; i < x0.size(); ++i) {
    Tensor xp = x0;
    Tensor xm = x0;
    xp.data()[i] += eps;
    xm.data()[i] -= eps;
    Tape tp;
    const double fp = tp.value(f(tp, tp.leaf(xp, false))).item();
    Tape tm;
    const double fm = tm.value(f(tm, tm.leaf(xm, false))).item();
    EXPECT_NEAR(analytic.data()[i], (fp - fm) / (2.0 * eps), 2e-5)
        << "entry " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomGraphGradcheck, ::testing::Range(0, 8));

// ---- Loss-shape invariants ---------------------------------------------------

class LossShape : public ::testing::TestWithParam<std::pair<double, double>> {};

TEST_P(LossShape, NonNegativeZeroAtOriginContinuous) {
  const auto [tu, to] = GetParam();
  EXPECT_DOUBLE_EQ(asym_huber_value(0.0, tu, to), 0.0);
  double prev = asym_huber_value(-3.0, tu, to);
  for (double x = -3.0; x <= 3.0; x += 1e-3) {
    const double v = asym_huber_value(x, tu, to);
    EXPECT_GE(v, 0.0);
    // Continuity: adjacent samples can't jump.
    EXPECT_LT(std::abs(v - prev), 0.05);
    prev = v;
  }
}

TEST_P(LossShape, LinearTailSlopes) {
  const auto [tu, to] = GetParam();
  // Beyond the kinks the derivative is exactly 2*theta.
  const double right = (asym_huber_value(2.0, tu, to) - asym_huber_value(1.5, tu, to)) / 0.5;
  const double left = (asym_huber_value(-2.0, tu, to) - asym_huber_value(-1.5, tu, to)) / -0.5;
  EXPECT_NEAR(right, 2.0 * to, 1e-9);
  EXPECT_NEAR(left, -2.0 * tu, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Thetas, LossShape,
                         ::testing::Values(std::pair{0.3, 0.1}, std::pair{0.1, 0.3},
                                           std::pair{0.2, 0.2}, std::pair{0.5, 0.05}));

// ---- Reciprocal op -----------------------------------------------------------

TEST(Reciprocal, ValueAndGradient) {
  Tape t;
  Var x = t.leaf(Tensor{{2.0, 4.0}});
  Var y = reciprocal(x);
  EXPECT_DOUBLE_EQ(t.value(y)(0, 0), 0.5);
  EXPECT_DOUBLE_EQ(t.value(y)(0, 1), 0.25);
  t.backward(sum_all(y));
  EXPECT_NEAR(t.grad(x)(0, 0), -0.25, 1e-12);    // -1/x^2
  EXPECT_NEAR(t.grad(x)(0, 1), -0.0625, 1e-12);
}

// ---- Dropout statistics (parameterized over p) -------------------------------

class DropoutRate : public ::testing::TestWithParam<double> {};

TEST_P(DropoutRate, InvertedScalingPreservesMean) {
  const double p = GetParam();
  Rng rng{77};
  Tape t;
  Var x = t.constant(Tensor{200, 50, 1.0});
  Var y = dropout(x, p, rng, true);
  const double mean = t.value(y).sum() / 10000.0;
  EXPECT_NEAR(mean, 1.0, 0.06);
}

INSTANTIATE_TEST_SUITE_P(Rates, DropoutRate, ::testing::Values(0.1, 0.25, 0.5, 0.75));

}  // namespace
}  // namespace graf::nn
