#include <gtest/gtest.h>

#include "apps/catalog.h"
#include "workload/azure_trace.h"
#include "workload/closed_loop.h"
#include "workload/open_loop.h"
#include "workload/schedule.h"

namespace graf::workload {
namespace {

TEST(Schedule, ConstantEverywhere) {
  const auto s = Schedule::constant(42.0);
  EXPECT_DOUBLE_EQ(s.at(0.0), 42.0);
  EXPECT_DOUBLE_EQ(s.at(1e6), 42.0);
  EXPECT_DOUBLE_EQ(s.max_value(), 42.0);
}

TEST(Schedule, StepSwitchesAtBoundary) {
  const auto s = Schedule::step(10.0, 50.0, 30.0);
  EXPECT_DOUBLE_EQ(s.at(29.999), 10.0);
  EXPECT_DOUBLE_EQ(s.at(30.0), 50.0);
  EXPECT_DOUBLE_EQ(s.max_value(), 50.0);
}

TEST(Schedule, PiecewiseHoldsLastValue) {
  const auto s = Schedule::piecewise({{0.0, 1.0}, {10.0, 2.0}, {20.0, 3.0}});
  EXPECT_DOUBLE_EQ(s.at(5.0), 1.0);
  EXPECT_DOUBLE_EQ(s.at(15.0), 2.0);
  EXPECT_DOUBLE_EQ(s.at(100.0), 3.0);
}

TEST(Schedule, RejectsUnsortedAndEmpty) {
  EXPECT_THROW(Schedule::piecewise({}), std::invalid_argument);
  EXPECT_THROW(Schedule::piecewise({{5.0, 1.0}, {1.0, 2.0}}), std::invalid_argument);
}

sim::Cluster quick_cluster() {
  return apps::make_cluster(apps::bookinfo(), {.seed = 3});
}

TEST(OpenLoop, HitsTargetRate) {
  sim::Cluster c = quick_cluster();
  OpenLoopConfig cfg;
  cfg.rate = Schedule::constant(50.0);
  OpenLoopGenerator gen{c, cfg};
  gen.start(20.0);
  c.run_until(20.0);
  EXPECT_NEAR(static_cast<double>(gen.generated()) / 20.0, 50.0, 5.0);
}

TEST(OpenLoop, FixedPacingIsExact) {
  sim::Cluster c = quick_cluster();
  OpenLoopConfig cfg;
  cfg.rate = Schedule::constant(10.0);
  cfg.poisson = false;
  OpenLoopGenerator gen{c, cfg};
  gen.start(10.0);
  c.run_until(10.0);
  EXPECT_NEAR(static_cast<double>(gen.generated()), 100.0, 2.0);
}

TEST(OpenLoop, StopHaltsGeneration) {
  sim::Cluster c = quick_cluster();
  OpenLoopConfig cfg;
  cfg.rate = Schedule::constant(100.0);
  OpenLoopGenerator gen{c, cfg};
  gen.start(100.0);
  c.run_until(5.0);
  gen.stop();
  const auto before = gen.generated();
  c.run_until(20.0);
  EXPECT_EQ(gen.generated(), before);
}

TEST(OpenLoop, SurvivesGeneratorDestruction) {
  sim::Cluster c = quick_cluster();
  {
    OpenLoopConfig cfg;
    cfg.rate = Schedule::constant(50.0);
    OpenLoopGenerator gen{c, cfg};
    gen.start(5.0);
    c.run_until(2.0);
  }  // generator destroyed with its arrival chain still armed
  c.run_until(30.0);  // must not crash; chain stops at until
  EXPECT_GT(c.completed(), 0u);
}

TEST(OpenLoop, ApiMixFollowsWeights) {
  sim::Cluster c = apps::make_cluster(apps::online_boutique(), {.seed = 4});
  OpenLoopConfig cfg;
  cfg.rate = Schedule::constant(200.0);
  cfg.api_weights = {0.5, 0.25, 0.25};
  OpenLoopGenerator gen{c, cfg};
  gen.start(20.0);
  c.run_until(25.0);
  const double q0 = c.api_qps(0, 20.0);
  const double q1 = c.api_qps(1, 20.0);
  EXPECT_NEAR(q0 / (q0 + 2.0 * q1), 0.5, 0.12);
}

TEST(OpenLoop, CompletionHookFires) {
  sim::Cluster c = quick_cluster();
  int done = 0;
  OpenLoopConfig cfg;
  cfg.rate = Schedule::constant(20.0);
  cfg.on_complete = [&](const trace::RequestTrace& t) {
    EXPECT_TRUE(t.ok);
    ++done;
  };
  OpenLoopGenerator gen{c, cfg};
  gen.start(10.0);
  c.run_until(12.0);
  EXPECT_GT(done, 100);
}

TEST(ClosedLoop, PopulationTracksSchedule) {
  sim::Cluster c = quick_cluster();
  ClosedLoopConfig cfg;
  cfg.users = Schedule::step(20.0, 60.0, 30.0);
  ClosedLoopGenerator gen{c, cfg};
  gen.start(60.0);
  c.run_until(25.0);
  EXPECT_EQ(gen.active_users(), 20);
  c.run_until(55.0);
  EXPECT_EQ(gen.active_users(), 60);
}

TEST(ClosedLoop, ScaleDownKillsUsers) {
  sim::Cluster c = quick_cluster();
  ClosedLoopConfig cfg;
  cfg.users = Schedule::step(50.0, 10.0, 20.0);
  cfg.max_think = 2.0;
  ClosedLoopGenerator gen{c, cfg};
  gen.start(60.0);
  c.run_until(40.0);
  EXPECT_LE(gen.active_users(), 12);
}

TEST(ClosedLoop, ThroughputBoundedByThinkTime) {
  // 100 users with think time U(0,5) (mean 2.5 s) generate at most
  // ~100/2.5 = 40 qps, regardless of service speed.
  sim::Cluster c = quick_cluster();
  ClosedLoopConfig cfg;
  cfg.users = Schedule::constant(100.0);
  ClosedLoopGenerator gen{c, cfg};
  gen.start(60.0);
  c.run_until(60.0);
  const double qps = c.api_qps(0, 30.0);
  EXPECT_GT(qps, 25.0);
  EXPECT_LT(qps, 45.0);
}

TEST(AzureTrace, DeterministicAndPositive) {
  AzureTraceConfig cfg;
  const auto a = azure_invocation_series(cfg);
  const auto b = azure_invocation_series(cfg);
  ASSERT_EQ(a.size(), cfg.minutes);
  EXPECT_EQ(a, b);
  for (double v : a) EXPECT_GT(v, 0.0);
}

TEST(AzureTrace, SeedChangesSeries) {
  AzureTraceConfig a{};
  AzureTraceConfig b{};
  b.seed = 999;
  EXPECT_NE(azure_invocation_series(a), azure_invocation_series(b));
}

TEST(AzureTrace, RescaleMapsToRange) {
  const auto s = rescale_series({1.0, 2.0, 3.0}, 30.0, 80.0);
  EXPECT_DOUBLE_EQ(s[0], 30.0);
  EXPECT_DOUBLE_EQ(s[1], 55.0);
  EXPECT_DOUBLE_EQ(s[2], 80.0);
}

TEST(AzureTrace, UserScheduleWithinBounds) {
  AzureTraceConfig cfg;
  const auto sched = azure_user_schedule(cfg, 30.0, 80.0);
  for (double t = 0.0; t < 60.0 * static_cast<double>(cfg.minutes); t += 30.0) {
    EXPECT_GE(sched.at(t), 30.0);
    EXPECT_LE(sched.at(t), 80.0);
  }
}

TEST(AzureTrace, HasVariation) {
  const auto s = azure_invocation_series({});
  const auto [mn, mx] = std::minmax_element(s.begin(), s.end());
  EXPECT_GT(*mx / *mn, 1.5);  // bursts + diurnal swing
}

TEST(AzureTrace, PrefixPropertyHoldsWhenExtended) {
  // The generator draws its randomness strictly minute-by-minute, so a
  // longer run of the same seed is an extension, not a reshuffle: replaying
  // the first half of a trace is bit-identical to generating just the half.
  AzureTraceConfig short_cfg;
  short_cfg.minutes = 32;
  AzureTraceConfig long_cfg = short_cfg;
  long_cfg.minutes = 96;
  const auto short_series = azure_invocation_series(short_cfg);
  const auto long_series = azure_invocation_series(long_cfg);
  ASSERT_EQ(long_series.size(), 96u);
  for (std::size_t m = 0; m < short_series.size(); ++m)
    EXPECT_EQ(short_series[m], long_series[m]) << "minute " << m;
}

TEST(AzureTrace, UserScheduleMatchesSeriesMinuteByMinute) {
  AzureTraceConfig cfg;
  const auto users = rescale_series(azure_invocation_series(cfg), 30.0, 80.0);
  const auto sched = azure_user_schedule(cfg, 30.0, 80.0);
  for (std::size_t m = 0; m < users.size(); ++m) {
    // Anywhere inside minute m the schedule holds that minute's value.
    EXPECT_EQ(sched.at(60.0 * static_cast<double>(m)), users[m]);
    EXPECT_EQ(sched.at(60.0 * static_cast<double>(m) + 59.0), users[m]);
  }
}

TEST(AzureTrace, UserScheduleIsBitwiseDeterministic) {
  AzureTraceConfig cfg;
  cfg.minutes = 48;
  const auto a = azure_user_schedule(cfg, 25.0, 90.0);
  const auto b = azure_user_schedule(cfg, 25.0, 90.0);
  for (double t = 0.0; t < 60.0 * 48.0; t += 17.0) EXPECT_EQ(a.at(t), b.at(t));
}

TEST(Schedule, SlicedRestartMatchesFullRun) {
  // Restarting a run mid-trace means re-expressing the remaining schedule
  // with times shifted to the new origin. The sliced schedule must agree
  // with the full one at every remaining instant — the property that lets a
  // checkpointed controller resume a trace without replaying its past.
  AzureTraceConfig cfg;
  cfg.minutes = 24;
  const auto users = rescale_series(azure_invocation_series(cfg), 30.0, 80.0);
  const auto full = azure_user_schedule(cfg, 30.0, 80.0);

  const std::size_t restart_minute = 9;
  const double t0 = 60.0 * static_cast<double>(restart_minute);
  std::vector<std::pair<Seconds, double>> tail;
  for (std::size_t m = restart_minute; m < users.size(); ++m)
    tail.emplace_back(60.0 * static_cast<double>(m) - t0, users[m]);
  const auto sliced = Schedule::piecewise(std::move(tail));

  for (double t = t0; t < 60.0 * 24.0; t += 7.0)
    EXPECT_EQ(sliced.at(t - t0), full.at(t)) << "t=" << t;
  EXPECT_EQ(sliced.max_value(),
            *std::max_element(users.begin() + restart_minute, users.end()));
}

}  // namespace
}  // namespace graf::workload
