// Property sweep over the configuration solver: for random SLOs and
// workloads the solution must stay within bounds, be (weakly) monotone in
// the SLO, and keep its latency estimate consistent with the request.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/configuration_solver.h"
#include "gnn/latency_model.h"

namespace graf::core {
namespace {

gnn::Dag diamond() {
  gnn::Dag d;
  d.add_node("fe");
  d.add_node("a");
  d.add_node("b");
  d.add_node("sink");
  d.add_edge(0, 1);
  d.add_edge(0, 2);
  d.add_edge(1, 3);
  d.add_edge(2, 3);
  return d;
}

/// Analytic monotone ground truth over the diamond; branch a || b, so the
/// slower branch dominates the middle stage.
double truth(const std::vector<double>& w, const std::vector<double>& q) {
  auto stage = [&](int i, double demand) {
    return demand * 1000.0 / q[static_cast<std::size_t>(i)] +
           0.5 * w[static_cast<std::size_t>(i)];
  };
  return stage(0, 15.0) + std::max(stage(1, 30.0), stage(2, 60.0)) + stage(3, 25.0);
}

gnn::LatencyModel& model() {
  static gnn::LatencyModel m = [] {
    gnn::MpnnConfig cfg;
    cfg.embed_dim = 10;
    cfg.mpnn_hidden = 10;
    cfg.readout_hidden = 32;
    cfg.dropout_p = 0.0;
    gnn::LatencyModel lm{diamond(), cfg, 23};
    Rng rng{29};
    gnn::Dataset data;
    for (int i = 0; i < 3000; ++i) {
      gnn::Sample s;
      const double w = rng.uniform(20.0, 80.0);
      s.workload = {w, w, w, w};
      s.quota.resize(4);
      for (auto& q : s.quota) q = rng.uniform(300.0, 2000.0);
      s.latency_ms = truth(s.workload, s.quota);
      data.push_back(std::move(s));
    }
    gnn::TrainConfig tc;
    tc.iterations = 3000;
    tc.batch_size = 64;
    tc.lr = 2e-3;
    tc.lr_decay_every = 800;
    tc.eval_every = 300;
    lm.fit(data, {}, tc);
    return lm;
  }();
  return m;
}

class SolverSweep : public ::testing::TestWithParam<int> {};

TEST_P(SolverSweep, BoundsAndConsistency) {
  Rng rng{static_cast<std::uint64_t>(GetParam()) * 31 + 5};
  ConfigurationSolver solver{model(), {}};
  const double w = rng.uniform(25.0, 75.0);
  std::vector<double> workload{w, w, w, w};
  std::vector<double> lo(4, 350.0);
  std::vector<double> hi(4, 1900.0);
  const double slo = rng.uniform(120.0, 400.0);

  const auto res = solver.solve(workload, slo, lo, hi);
  ASSERT_EQ(res.quota.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_GE(res.quota[i], lo[i] - 1e-9);
    EXPECT_LE(res.quota[i], hi[i] + 1e-9);
  }
  EXPECT_GT(res.iterations, 0u);
  // The model's own estimate of the solution never exceeds the SLO by more
  // than the convergence slack (it may sit below when bounds bind).
  EXPECT_LT(res.predicted_ms, slo * 1.10);
}

TEST_P(SolverSweep, WeaklyMonotoneInSlo) {
  Rng rng{static_cast<std::uint64_t>(GetParam()) * 37 + 11};
  ConfigurationSolver solver{model(), {}};
  const double w = rng.uniform(25.0, 75.0);
  std::vector<double> workload{w, w, w, w};
  std::vector<double> lo(4, 350.0);
  std::vector<double> hi(4, 1900.0);
  const double slo = rng.uniform(150.0, 300.0);

  auto total = [&](double s) {
    const auto res = solver.solve(workload, s, lo, hi);
    double t = 0.0;
    for (double q : res.quota) t += q;
    return t;
  };
  // 25% SLO relaxation should not require more CPU (5% numeric slack).
  EXPECT_LE(total(slo * 1.25), total(slo) * 1.05);
}

TEST_P(SolverSweep, SlackBranchGetsLessCpu) {
  // Service b is 2x as expensive as its parallel sibling a; a has slack, so
  // the solver must not give a more CPU than b.
  ConfigurationSolver solver{model(), {}};
  Rng rng{static_cast<std::uint64_t>(GetParam()) * 41 + 13};
  const double w = rng.uniform(30.0, 70.0);
  std::vector<double> workload{w, w, w, w};
  std::vector<double> lo(4, 350.0);
  std::vector<double> hi(4, 1900.0);
  const auto res = solver.solve(workload, rng.uniform(170.0, 280.0), lo, hi);
  EXPECT_LE(res.quota[1], res.quota[2] * 1.15);
}

INSTANTIATE_TEST_SUITE_P(RandomSlos, SolverSweep, ::testing::Range(0, 6));

// The batched multi-start path must be an exact drop-in for the concurrent
// per-start path: same winner, same loss, same per-start bookkeeping, down
// to the last bit (DESIGN.md §3.9 explains why the K x n tape can be exact).
TEST(BatchedMultiStart, MatchesConcurrentPathBitwise) {
  std::vector<double> workload{50.0, 50.0, 50.0, 50.0};
  std::vector<double> lo(4, 350.0);
  std::vector<double> hi(4, 1900.0);
  for (double slo : {160.0, 240.0, 330.0}) {
    SolverConfig scfg;
    scfg.multi_starts = 4;
    scfg.batched_multi_start = true;
    ConfigurationSolver batched{model(), scfg};
    scfg.batched_multi_start = false;
    ConfigurationSolver concurrent{model(), scfg};

    const auto rb = batched.solve(workload, slo, lo, hi);
    const auto rc = concurrent.solve(workload, slo, lo, hi);
    ASSERT_EQ(rb.quota.size(), rc.quota.size());
    for (std::size_t i = 0; i < rb.quota.size(); ++i)
      EXPECT_EQ(rb.quota[i], rc.quota[i]) << "slo=" << slo << " i=" << i;
    EXPECT_EQ(rb.loss, rc.loss) << "slo=" << slo;
    EXPECT_EQ(rb.predicted_ms, rc.predicted_ms) << "slo=" << slo;
    EXPECT_EQ(rb.iterations, rc.iterations) << "slo=" << slo;
    EXPECT_EQ(rb.converged, rc.converged) << "slo=" << slo;
  }
}

}  // namespace
}  // namespace graf::core
