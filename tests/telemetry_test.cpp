#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>
#include <vector>

#include "apps/catalog.h"
#include "common/rng.h"
#include "common/stats.h"
#include "sim/cluster.h"
#include "sim/event_queue.h"
#include "telemetry/exporter.h"
#include "telemetry/log_histogram.h"
#include "telemetry/metrics.h"
#include "telemetry/profiler.h"
#include "telemetry/scraper.h"
#include "workload/open_loop.h"

namespace graf::telemetry {
namespace {

// -- LogHistogram ------------------------------------------------------------

TEST(LogHistogram, RecordsBasicAggregates) {
  LogHistogram h;
  for (double v : {1.0, 2.0, 4.0, 8.0}) h.record(v);
  EXPECT_EQ(h.total(), 4u);
  EXPECT_DOUBLE_EQ(h.sum(), 15.0);
  EXPECT_DOUBLE_EQ(h.mean(), 3.75);
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
  EXPECT_DOUBLE_EQ(h.max(), 8.0);
}

TEST(LogHistogram, EmptyPercentileThrows) {
  LogHistogram h;
  EXPECT_THROW(h.percentile(50.0), std::logic_error);
}

TEST(LogHistogram, NanIgnoredAndExtremesClamp) {
  LogHistogram h;
  h.record(std::nan(""));
  EXPECT_EQ(h.total(), 0u);
  h.record(0.0);     // below 2^min_exponent: first bucket
  h.record(-5.0);    // negatives clamp the same way
  h.record(1e300);   // above 2^max_exponent: last bucket
  EXPECT_EQ(h.total(), 3u);
  EXPECT_EQ(h.bucket(0), 2u);
  EXPECT_EQ(h.bucket(h.bucket_count() - 1), 1u);
}

TEST(LogHistogram, RankEndpointsReturnExactExtrema) {
  LogHistogram h;
  Rng rng{3};
  for (int i = 0; i < 1000; ++i) h.record(rng.uniform(0.5, 800.0));
  EXPECT_DOUBLE_EQ(h.percentile(0.0), h.min());
  EXPECT_DOUBLE_EQ(h.percentile(100.0), h.max());
  EXPECT_DOUBLE_EQ(h.percentile(-3.0), h.min());
  EXPECT_DOUBLE_EQ(h.percentile(120.0), h.max());
}

TEST(LogHistogram, SingleSampleAllRanks) {
  LogHistogram h;
  h.record(42.0);
  for (double rank : {0.0, 50.0, 99.0, 100.0}) {
    const double p = h.percentile(rank);
    EXPECT_NEAR(p, 42.0, 42.0 * h.relative_error());
  }
}

// The acceptance bound from the file comment: percentile() within
// relative_error() of the true nearest-rank order statistic.
TEST(LogHistogram, PercentileWithinDocumentedBoundOfExact) {
  LogHistogram h;
  Rng rng{7};
  std::vector<double> vals;
  for (int i = 0; i < 20000; ++i) {
    // Heavy-tailed mixture, like e2e latencies: bulk + slow tail.
    const double v = rng.uniform() < 0.9 ? rng.uniform(5.0, 50.0)
                                         : 50.0 + rng.exponential(0.01);
    vals.push_back(v);
    h.record(v);
  }
  std::sort(vals.begin(), vals.end());
  for (double rank : {10.0, 50.0, 90.0, 95.0, 99.0, 99.9}) {
    // Nearest-rank (ceiling) order statistic.
    const auto idx = static_cast<std::size_t>(
        std::ceil(rank / 100.0 * static_cast<double>(vals.size()))) - 1;
    const double exact = vals[std::min(idx, vals.size() - 1)];
    EXPECT_NEAR(h.percentile(rank), exact, exact * h.relative_error())
        << "rank " << rank;
  }
}

TEST(LogHistogram, MergeEqualsUnionStream) {
  LogHistogram a;
  LogHistogram b;
  LogHistogram all;
  Rng rng{11};
  for (int i = 0; i < 3000; ++i) {
    const double x = rng.uniform(1.0, 100.0);
    const double y = rng.uniform(200.0, 900.0);
    a.record(x);
    all.record(x);
    b.record(y);
    all.record(y);
  }
  a.merge(b);
  EXPECT_EQ(a.total(), all.total());
  // Summation order differs between the two streams: near, not bit-equal.
  EXPECT_NEAR(a.sum(), all.sum(), 1e-6 * all.sum());
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
  // Sum-then-quantile is exact on bucket counts: identical percentiles.
  for (double rank : {50.0, 95.0, 99.0})
    EXPECT_DOUBLE_EQ(a.percentile(rank), all.percentile(rank));
}

TEST(LogHistogram, MergeRejectsConfigMismatch) {
  LogHistogram a;
  LogHistogram b{LogHistogramConfig{.sub_buckets = 8}};
  EXPECT_THROW(a.merge(b), std::invalid_argument);
}

TEST(LogHistogram, SnapshotDeltaIsolatesInterval) {
  LogHistogram h;
  for (int i = 0; i < 100; ++i) h.record(10.0);
  const HistogramSnapshot before = h.snapshot();
  for (int i = 0; i < 50; ++i) h.record(500.0);
  const HistogramSnapshot delta = h.snapshot().delta_since(before);
  EXPECT_EQ(delta.total, 50u);
  EXPECT_NEAR(delta.mean(), 500.0, 500.0 * 2.0 / 64.0);
  // All interval mass is at 500: every rank resolves near it.
  EXPECT_NEAR(delta.percentile(50.0), 500.0, 500.0 / 64.0);
}

TEST(LogHistogram, DeltaSinceRejectsNonSuperset) {
  LogHistogram h;
  h.record(10.0);
  const HistogramSnapshot later = h.snapshot();
  h.record(10.0);
  const HistogramSnapshot newer = h.snapshot();
  EXPECT_THROW(later.delta_since(newer), std::invalid_argument);
}

TEST(LogHistogram, ResetClears) {
  LogHistogram h;
  h.record(5.0);
  h.reset();
  EXPECT_EQ(h.total(), 0u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.0);
  EXPECT_THROW(h.percentile(50.0), std::logic_error);
}

// -- MetricsRegistry ---------------------------------------------------------

TEST(MetricsRegistry, SeriesKeySortsLabels) {
  EXPECT_EQ(series_key("m", {}), "m");
  EXPECT_EQ(series_key("m", {{"b", "2"}, {"a", "1"}}), "m{a=\"1\",b=\"2\"}");
}

TEST(MetricsRegistry, LabelSetsNameDistinctSeries) {
  MetricsRegistry reg;
  Counter& a = reg.counter("req", {{"service", "a"}});
  Counter& b = reg.counter("req", {{"service", "b"}});
  EXPECT_NE(&a, &b);
  a.add(3.0);
  b.add(5.0);
  // Same (name, labels) — in any label order — returns the same instrument.
  EXPECT_EQ(&reg.counter("req", {{"service", "a"}}), &a);
  EXPECT_DOUBLE_EQ(reg.counter("req", {{"service", "a"}}).value(), 3.0);
  EXPECT_DOUBLE_EQ(reg.counter("req", {{"service", "b"}}).value(), 5.0);
}

TEST(MetricsRegistry, TypeMismatchThrows) {
  MetricsRegistry reg;
  reg.counter("x");
  EXPECT_THROW(reg.gauge("x"), std::invalid_argument);
  EXPECT_THROW(reg.histogram("x"), std::invalid_argument);
}

TEST(MetricsRegistry, SnapshotCapturesAllTypes) {
  MetricsRegistry reg;
  reg.counter("c").add(2.0);
  reg.gauge("g").set(7.5);
  reg.histogram("h").record(3.0);
  const RegistrySnapshot snap = reg.snapshot();
  ASSERT_EQ(snap.metrics.size(), 3u);
  ASSERT_NE(snap.find("c"), nullptr);
  EXPECT_DOUBLE_EQ(snap.find("c")->value, 2.0);
  EXPECT_DOUBLE_EQ(snap.find("g")->value, 7.5);
  ASSERT_TRUE(snap.find("h")->histogram.has_value());
  EXPECT_EQ(snap.find("h")->histogram->total, 1u);
  EXPECT_EQ(snap.find("missing"), nullptr);
}

TEST(MetricsRegistry, SnapshotMergeAggregatesReplicas) {
  MetricsRegistry r1;
  MetricsRegistry r2;
  r1.counter("req").add(10.0);
  r2.counter("req").add(5.0);
  r1.histogram("lat").record(10.0);
  r2.histogram("lat").record(1000.0);
  r2.gauge("only_r2").set(3.0);
  RegistrySnapshot merged = r1.snapshot();
  merged.merge(r2.snapshot());
  EXPECT_DOUBLE_EQ(merged.find("req")->value, 15.0);
  EXPECT_EQ(merged.find("lat")->histogram->total, 2u);
  ASSERT_NE(merged.find("only_r2"), nullptr);  // one-sided metrics copy through
  EXPECT_DOUBLE_EQ(merged.find("only_r2")->value, 3.0);
}

// -- ScopedTimer / Profiler --------------------------------------------------

TEST(ScopedTimer, NullTargetIsNoop) {
  ScopedTimer t{nullptr};
  EXPECT_DOUBLE_EQ(t.stop(), 0.0);
}

TEST(ScopedTimer, RecordsPositiveMicroseconds) {
  LogHistogram h;
  {
    ScopedTimer t{&h};
    volatile double sink = 0.0;
    for (int i = 0; i < 1000; ++i) sink = sink + 1.0;
  }
  ASSERT_EQ(h.total(), 1u);
  EXPECT_GT(h.sum(), 0.0);
}

TEST(ScopedTimer, StopDisarmsDestructor) {
  LogHistogram h;
  {
    ScopedTimer t{&h};
    t.stop();
  }  // destructor must not double-record
  EXPECT_EQ(h.total(), 1u);
}

TEST(Profiler, SiteInternsUnderProfilePrefix) {
  MetricsRegistry reg;
  Profiler prof;
  EXPECT_EQ(prof.site("plan"), nullptr);  // unbound: disabled
  prof.bind(&reg);
  LogHistogram* site = prof.site("plan");
  ASSERT_NE(site, nullptr);
  { ScopedTimer t{site}; }
  EXPECT_EQ(reg.histogram("profile.plan_us").total(), 1u);
}

// -- Scraper -----------------------------------------------------------------

TEST(Scraper, GaugeSeriesTrackValues) {
  MetricsRegistry reg;
  Gauge& g = reg.gauge("depth");
  Scraper scraper{reg, {.period = 15.0}};
  g.set(3.0);
  scraper.scrape(15.0);
  g.set(7.0);
  scraper.scrape(30.0);
  const auto* pts = scraper.store().find("depth");
  ASSERT_NE(pts, nullptr);
  ASSERT_EQ(pts->size(), 2u);
  EXPECT_DOUBLE_EQ((*pts)[0].value, 3.0);
  EXPECT_DOUBLE_EQ((*pts)[1].value, 7.0);
}

TEST(Scraper, CounterRateUsesIntervalDelta) {
  MetricsRegistry reg;
  Counter& c = reg.counter("req");
  Scraper scraper{reg, {.period = 10.0}};
  c.add(100.0);
  scraper.scrape(10.0);  // first scrape: rate over [0, now]
  c.add(50.0);
  scraper.scrape(20.0);
  const auto* rate = scraper.store().find("req.rate");
  ASSERT_NE(rate, nullptr);
  ASSERT_EQ(rate->size(), 2u);
  EXPECT_DOUBLE_EQ((*rate)[0].value, 10.0);  // 100 / 10s
  EXPECT_DOUBLE_EQ((*rate)[1].value, 5.0);   // 50 / 10s
  const auto* cum = scraper.store().find("req");
  EXPECT_DOUBLE_EQ((*cum)[1].value, 150.0);  // cumulative series kept too
}

TEST(Scraper, HistogramSeriesDescribeIntervalOnly) {
  MetricsRegistry reg;
  LogHistogram& h = reg.histogram("lat");
  Scraper scraper{reg, {.period = 15.0, .histogram_ranks = {50.0, 99.0}}};
  for (int i = 0; i < 100; ++i) h.record(10.0);
  scraper.scrape(15.0);
  for (int i = 0; i < 100; ++i) h.record(1000.0);
  scraper.scrape(30.0);
  scraper.scrape(45.0);  // idle interval: no histogram points

  const auto* count = scraper.store().find("lat.count");
  ASSERT_NE(count, nullptr);
  ASSERT_EQ(count->size(), 2u);  // idle third scrape emitted nothing
  EXPECT_DOUBLE_EQ((*count)[0].value, 100.0);
  EXPECT_DOUBLE_EQ((*count)[1].value, 100.0);

  const auto* p99 = scraper.store().find("lat.p99");
  ASSERT_NE(p99, nullptr);
  ASSERT_EQ(p99->size(), 2u);
  // Second interval is all-1000 even though cumulative p99 would mix eras.
  EXPECT_NEAR((*p99)[0].value, 10.0, 10.0 / 64.0);
  EXPECT_NEAR((*p99)[1].value, 1000.0, 1000.0 / 64.0);
}

TEST(Scraper, AttachAlignsToSimClockPeriod) {
  MetricsRegistry reg;
  reg.gauge("g").set(1.0);
  sim::EventQueue events;
  Scraper scraper{reg, {.period = 15.0}};
  scraper.attach(events, 60.0);
  events.run_until(100.0);
  EXPECT_EQ(scraper.scrapes(), 4u);  // t = 15, 30, 45, 60
  const auto* pts = scraper.store().find("g");
  ASSERT_NE(pts, nullptr);
  ASSERT_EQ(pts->size(), 4u);
  for (std::size_t i = 0; i < pts->size(); ++i)
    EXPECT_DOUBLE_EQ((*pts)[i].time, 15.0 * static_cast<double>(i + 1));
}

// -- Exporter ----------------------------------------------------------------

TEST(Exporter, JsonEscaping) {
  EXPECT_EQ(json_escape("a\"b\\c\n"), "a\\\"b\\\\c\\n");
}

TEST(Exporter, SeriesJsonAndCsvShapes) {
  TimeSeriesStore store;
  store.append("m{service=\"a\"}", 15.0, 1.5);
  store.append("m{service=\"a\"}", 30.0, 2.5);

  std::ostringstream js;
  write_series_json(js, store);
  const std::string json = js.str();
  EXPECT_NE(json.find("\"series\""), std::string::npos);
  EXPECT_NE(json.find("m{service=\\\"a\\\"}"), std::string::npos);
  EXPECT_NE(json.find("[15, 1.5]"), std::string::npos);

  std::ostringstream cs;
  write_series_csv(cs, store);
  const std::string csv = cs.str();
  EXPECT_NE(csv.find("key,time,value"), std::string::npos);
  EXPECT_NE(csv.find(",30,2.5"), std::string::npos);
}

TEST(Exporter, SnapshotJsonIncludesHistogramRollup) {
  MetricsRegistry reg;
  reg.histogram("lat", {{"api", "checkout"}}).record(25.0);
  std::ostringstream os;
  write_snapshot_json(os, reg.snapshot());
  const std::string json = os.str();
  EXPECT_NE(json.find("\"name\": \"lat\""), std::string::npos);
  EXPECT_NE(json.find("\"type\": \"histogram\""), std::string::npos);
  EXPECT_NE(json.find("\"count\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"p99\""), std::string::npos);
}

TEST(Exporter, BenchExporterRows) {
  BenchExporter exp;
  EXPECT_TRUE(exp.empty());
  exp.record_at("BM_X", 12.5, "ns", 1700000000);
  std::ostringstream os;
  exp.write_json(os);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"name\": \"BM_X\""), std::string::npos);
  EXPECT_NE(json.find("\"unit\": \"ns\""), std::string::npos);
  EXPECT_NE(json.find("\"timestamp\": 1700000000"), std::string::npos);
}

TEST(Exporter, BenchExporterMergeKeepsForeignRowsAndOverridesOwn) {
  const std::string path = "bench_merge_test.json";
  {
    BenchExporter old;
    old.record_at("BM_micro", 10.0, "ns", 100);
    old.record_at("chaos.violation_pct \"q\"", 9.0, "%", 100);
    ASSERT_TRUE(old.write_json_file(path));
  }
  BenchExporter exp;
  exp.record_at("chaos.violation_pct \"q\"", 4.0, "%", 200);  // fresh run wins
  ASSERT_TRUE(exp.merge_json_file(path));
  ASSERT_EQ(exp.rows().size(), 2u);
  // Foreign row survives (first, original order), escaped name round-trips,
  // and the in-memory row overrides the stale file row.
  EXPECT_EQ(exp.rows()[0].name, "BM_micro");
  EXPECT_DOUBLE_EQ(exp.rows()[0].value, 10.0);
  EXPECT_EQ(exp.rows()[0].unit, "ns");
  EXPECT_EQ(exp.rows()[0].timestamp, 100);
  EXPECT_EQ(exp.rows()[1].name, "chaos.violation_pct \"q\"");
  EXPECT_DOUBLE_EQ(exp.rows()[1].value, 4.0);
  EXPECT_EQ(exp.rows()[1].timestamp, 200);
  // Missing file: reports failure, exporter unchanged.
  EXPECT_FALSE(exp.merge_json_file("no_such_bench_file.json"));
  EXPECT_EQ(exp.rows().size(), 2u);
  std::remove(path.c_str());
}

// Regression: names used to be compared verbatim, so a benchmark that gained
// google-benchmark's "/real_time" decoration (or dropped it) stranded its old
// row in the merged file — two rows for one benchmark, and the perf gate
// could read the stale one. The merge must match modulo that suffix, in both
// directions, while distinct base names still coexist.
TEST(Exporter, BenchExporterMergeReplacesRealTimeSuffixVariants) {
  const std::string path = "bench_merge_realtime_test.json";
  {
    BenchExporter old;
    old.record_at("BM_Solve/1", 50.0, "ns", 100);            // gains /real_time
    old.record_at("BM_Fleet/8/real_time", 80.0, "items/s", 100);  // loses it
    old.record_at("BM_Other/1", 7.0, "ns", 100);             // untouched
    ASSERT_TRUE(old.write_json_file(path));
  }
  BenchExporter exp;
  exp.record_at("BM_Solve/1/real_time", 42.0, "ns", 200);
  exp.record_at("BM_Fleet/8", 99.0, "items/s", 200);
  ASSERT_TRUE(exp.merge_json_file(path));
  ASSERT_EQ(exp.rows().size(), 3u) << "suffix variants must replace, not pile up";
  EXPECT_EQ(exp.rows()[0].name, "BM_Other/1");
  EXPECT_EQ(exp.rows()[0].timestamp, 100);
  EXPECT_EQ(exp.rows()[1].name, "BM_Solve/1/real_time");
  EXPECT_DOUBLE_EQ(exp.rows()[1].value, 42.0);
  EXPECT_EQ(exp.rows()[2].name, "BM_Fleet/8");
  EXPECT_DOUBLE_EQ(exp.rows()[2].value, 99.0);
  std::remove(path.c_str());
}

// -- Cluster integration -----------------------------------------------------

// Acceptance criterion: the telemetry histogram's p99 over a simulated
// workload agrees with the exact (copy-and-sort) percentile over the same
// stream within the histogram's documented relative-error bound.
TEST(TelemetryIntegration, ClusterE2eP99MatchesExactWithinBound) {
  auto topo = apps::online_boutique();
  sim::Cluster cluster = apps::make_cluster(topo, {.seed = 21});
  MetricsRegistry registry;
  cluster.set_metrics(&registry);

  std::vector<double> exact;
  workload::OpenLoopConfig g;
  g.rate = workload::Schedule::constant(150.0);
  g.api_weights = topo.api_weights;
  g.on_complete = [&exact](const trace::RequestTrace& t) {
    if (t.ok) exact.push_back(t.e2e_ms());
  };
  workload::OpenLoopGenerator gen{cluster, g};
  gen.start(60.0);
  cluster.run_until(90.0);

  LogHistogram* hist = cluster.e2e_histogram();
  ASSERT_NE(hist, nullptr);
  ASSERT_EQ(hist->total(), exact.size());
  ASSERT_GT(exact.size(), 1000u);

  std::sort(exact.begin(), exact.end());
  for (double rank : {50.0, 95.0, 99.0}) {
    const auto idx = static_cast<std::size_t>(
        std::ceil(rank / 100.0 * static_cast<double>(exact.size()))) - 1;
    const double nearest_rank = exact[std::min(idx, exact.size() - 1)];
    EXPECT_NEAR(hist->percentile(rank), nearest_rank,
                nearest_rank * hist->relative_error())
        << "rank " << rank;
  }
}

TEST(TelemetryIntegration, ScrapedSeriesCoverSimAndExport) {
  auto topo = apps::online_boutique();
  sim::Cluster cluster = apps::make_cluster(topo, {.seed = 22});
  MetricsRegistry registry;
  cluster.set_metrics(&registry);

  Scraper scraper{registry, {.period = 15.0}};
  scraper.attach(cluster.events(), 60.0);

  workload::OpenLoopConfig g;
  g.rate = workload::Schedule::constant(100.0);
  g.api_weights = topo.api_weights;
  workload::OpenLoopGenerator gen{cluster, g};
  gen.start(60.0);
  cluster.run_until(60.0);

  EXPECT_EQ(scraper.scrapes(), 4u);
  const std::string svc = topo.services[0].name;
  const auto* util =
      scraper.store().find("sim.utilization{service=\"" + svc + "\"}");
  ASSERT_NE(util, nullptr);
  EXPECT_EQ(util->size(), 4u);
  EXPECT_NE(scraper.store().find("sim.e2e_latency_ms.p99"), nullptr);
  EXPECT_NE(scraper.store().find("sim.requests_completed.rate"), nullptr);

  std::ostringstream os;
  write_series_json(os, scraper.store());
  EXPECT_NE(os.str().find("sim.e2e_latency_ms.p99"), std::string::npos);
}

}  // namespace
}  // namespace graf::telemetry
