#include "sim/cluster.h"

#include <gtest/gtest.h>

#include <vector>

namespace graf::sim {
namespace {

/// Two-service chain: A -> B, deterministic demands.
Cluster make_chain_cluster(double demand_a = 10.0, double demand_b = 20.0,
                           Millicores quota = 1000.0) {
  std::vector<ServiceConfig> svcs{
      {.name = "a", .unit_quota = quota, .initial_instances = 1,
       .max_concurrency = 8, .demand_mean_ms = demand_a, .demand_sigma = 0.0},
      {.name = "b", .unit_quota = quota, .initial_instances = 1,
       .max_concurrency = 8, .demand_mean_ms = demand_b, .demand_sigma = 0.0},
  };
  CallNode root{.service = 0, .stages = {{CallNode{.service = 1}}}};
  return Cluster{svcs, {Api{"chain", root}}, {}};
}

TEST(Cluster, ChainLatencyIsSumOfStages) {
  Cluster c = make_chain_cluster();
  double e2e = -1.0;
  c.submit_request(0, [&](const trace::RequestTrace& t) { e2e = t.e2e_ms(); });
  c.run_for(1.0);
  EXPECT_NEAR(e2e, 30.0, 1e-6);  // 10 at A, then 20 at B
  EXPECT_EQ(c.completed(), 1u);
  EXPECT_EQ(c.inflight(), 0u);
}

TEST(Cluster, VisitsRecordedPerService) {
  Cluster c = make_chain_cluster();
  std::vector<std::uint32_t> visits;
  c.submit_request(0, [&](const trace::RequestTrace& t) { visits = t.visits; });
  c.run_for(1.0);
  ASSERT_EQ(visits.size(), 2u);
  EXPECT_EQ(visits[0], 1u);
  EXPECT_EQ(visits[1], 1u);
}

TEST(Cluster, ParallelStageTakesMax) {
  // root calls two children in parallel: 10ms and 40ms.
  std::vector<ServiceConfig> svcs{
      {.name = "root", .unit_quota = 1000, .demand_mean_ms = 5.0, .demand_sigma = 0.0},
      {.name = "fast", .unit_quota = 1000, .demand_mean_ms = 10.0, .demand_sigma = 0.0},
      {.name = "slow", .unit_quota = 1000, .demand_mean_ms = 40.0, .demand_sigma = 0.0},
  };
  CallNode root{.service = 0,
                .stages = {{CallNode{.service = 1}, CallNode{.service = 2}}}};
  Cluster c{svcs, {Api{"par", root}}, {}};
  double e2e = -1.0;
  c.submit_request(0, [&](const trace::RequestTrace& t) { e2e = t.e2e_ms(); });
  c.run_for(1.0);
  EXPECT_NEAR(e2e, 45.0, 1e-6);  // 5 + max(10, 40)
}

TEST(Cluster, SequentialStagesAddUp) {
  std::vector<ServiceConfig> svcs{
      {.name = "root", .unit_quota = 1000, .demand_mean_ms = 5.0, .demand_sigma = 0.0},
      {.name = "x", .unit_quota = 1000, .demand_mean_ms = 10.0, .demand_sigma = 0.0},
      {.name = "y", .unit_quota = 1000, .demand_mean_ms = 15.0, .demand_sigma = 0.0},
  };
  CallNode root{.service = 0,
                .stages = {{CallNode{.service = 1}}, {CallNode{.service = 2}}}};
  Cluster c{svcs, {Api{"seq", root}}, {}};
  double e2e = -1.0;
  c.submit_request(0, [&](const trace::RequestTrace& t) { e2e = t.e2e_ms(); });
  c.run_for(1.0);
  EXPECT_NEAR(e2e, 30.0, 1e-6);  // 5 + 10 + 15
}

TEST(Cluster, ProbabilisticBranchSkipsSometimes) {
  std::vector<ServiceConfig> svcs{
      {.name = "root", .unit_quota = 1000, .demand_mean_ms = 1.0, .demand_sigma = 0.0},
      {.name = "maybe", .unit_quota = 1000, .demand_mean_ms = 1.0, .demand_sigma = 0.0},
  };
  CallNode root{.service = 0,
                .stages = {{CallNode{.service = 1, .probability = 0.5}}}};
  Cluster c{svcs, {Api{"p", root}}, {.seed = 9}};
  int taken = 0;
  const int n = 400;
  int done = 0;
  for (int i = 0; i < n; ++i) {
    c.submit_request(0, [&](const trace::RequestTrace& t) {
      ++done;
      if (t.visits[1] > 0) ++taken;
    });
  }
  c.run_for(5.0);
  EXPECT_EQ(done, n);
  EXPECT_NEAR(static_cast<double>(taken) / n, 0.5, 0.1);
}

TEST(Cluster, MakeChainHelper) {
  CallNode root = make_chain({0, 1});
  EXPECT_EQ(root.service, 0);
  ASSERT_EQ(root.stages.size(), 1u);
  EXPECT_EQ(root.stages[0][0].service, 1);
}

TEST(Cluster, E2eWindowCollectsLatencies) {
  Cluster c = make_chain_cluster();
  for (int i = 0; i < 10; ++i) c.submit_request(0);
  c.run_for(2.0);
  EXPECT_EQ(c.e2e_latency_all().size(), 10u);
  EXPECT_EQ(c.e2e_latency(0).size(), 10u);
}

TEST(Cluster, LocalLatencyExcludesChildren) {
  Cluster c = make_chain_cluster(10.0, 20.0);
  c.submit_request(0);
  c.run_for(1.0);
  // Service A's local latency is 10ms even though its subtree takes 30.
  EXPECT_NEAR(c.service_latency(0).percentile(50.0), 10.0, 1e-6);
  EXPECT_NEAR(c.service_latency(1).percentile(50.0), 20.0, 1e-6);
}

TEST(Cluster, TracerAccumulatesFanout) {
  Cluster c = make_chain_cluster();
  for (int i = 0; i < 20; ++i) c.submit_request(0);
  c.run_for(2.0);
  const auto f = c.tracer().fanout(0, 90.0);
  EXPECT_DOUBLE_EQ(f[0], 1.0);
  EXPECT_DOUBLE_EQ(f[1], 1.0);
}

TEST(Cluster, ApiQpsMeasuresArrivalRate) {
  Cluster c = make_chain_cluster();
  // 50 submissions over 5 seconds = 10 qps.
  for (int i = 0; i < 50; ++i) {
    c.events().schedule_at(i * 0.1, [&c] { c.submit_request(0); });
  }
  c.run_for(5.0);
  EXPECT_NEAR(c.api_qps(0, 5.0), 10.0, 1.0);
}

TEST(Cluster, MetricsSeriesRecordsUtilization) {
  Cluster c = make_chain_cluster(100.0, 100.0, 1000.0);
  // Saturate service A: ~10 rps of 100 core-ms = 1 core of demand.
  for (int i = 0; i < 50; ++i)
    c.events().schedule_at(i * 0.1, [&c] { c.submit_request(0); });
  c.run_for(6.0);
  const auto& series = c.series(0);
  ASSERT_FALSE(series.empty());
  double peak = 0.0;
  for (const auto& p : series) peak = std::max(peak, p.utilization);
  EXPECT_GT(peak, 0.5);
  EXPECT_GT(c.utilization_avg(0, 6.0), 0.2);
  EXPECT_GT(c.qps_avg(0, 6.0), 2.0);
}

TEST(Cluster, HardResetDropsInflight) {
  Cluster c = make_chain_cluster(1000.0, 1000.0, 100.0);  // very slow
  for (int i = 0; i < 8; ++i) c.submit_request(0);
  c.run_for(0.5);
  EXPECT_GT(c.inflight(), 0u);
  c.hard_reset_load();
  EXPECT_EQ(c.inflight(), 0u);
  c.run_for(30.0);
  EXPECT_EQ(c.completed(), 0u);  // dropped, not completed
}

TEST(Cluster, ApplyTotalQuotaSplitsEvenly) {
  Cluster c = make_chain_cluster();
  c.apply_total_quota(0, 900.0, 250.0);
  EXPECT_EQ(c.service(0).ready_count(), 4);  // ceil(900/250)
  EXPECT_NEAR(c.service(0).unit_quota(), 225.0, 1e-9);
  EXPECT_NEAR(c.service(0).total_quota(), 900.0, 1e-9);
}

TEST(Cluster, TotalsAggregate) {
  Cluster c = make_chain_cluster();
  EXPECT_EQ(c.total_ready_instances(), 2);
  EXPECT_DOUBLE_EQ(c.total_quota(), 2000.0);
  c.service(0).scale_to(3);
  EXPECT_EQ(c.total_target_instances(), 4);
}

TEST(Cluster, LookupsByName) {
  Cluster c = make_chain_cluster();
  EXPECT_EQ(c.service_index("b"), 1);
  EXPECT_EQ(c.service_index("zzz"), -1);
  EXPECT_EQ(c.api_index("chain"), 0);
  EXPECT_EQ(c.api_index("nope"), -1);
}

TEST(Cluster, ValidatesApis) {
  std::vector<ServiceConfig> svcs{{.name = "a", .unit_quota = 100}};
  CallNode bad{.service = 5};
  EXPECT_THROW((Cluster{svcs, {Api{"bad", bad}}, {}}), std::invalid_argument);
  CallNode bad_p{.service = 0, .probability = 1.5};
  EXPECT_THROW((Cluster{svcs, {Api{"badp", bad_p}}, {}}), std::invalid_argument);
}

TEST(Cluster, SubmitRejectsBadApi) {
  Cluster c = make_chain_cluster();
  EXPECT_THROW(c.submit_request(7), std::out_of_range);
}

// Regression: the metrics ticker's CPU numerator includes retiring
// (draining) instances, so the requested-capacity denominator must too.
// Dividing 4 busy pods' burn by 1 surviving pod's request reported 800%
// utilization during a scale-down and tricked threshold autoscalers into
// spurious re-upscales.
TEST(Cluster, UtilizationDuringScaleDownCountsRetiringQuota) {
  std::vector<ServiceConfig> svcs{
      {.name = "only", .unit_quota = 1000, .initial_instances = 4,
       .max_concurrency = 1, .demand_mean_ms = 10.0, .demand_sigma = 0.0},
  };
  Cluster c{svcs, {Api{"one", CallNode{.service = 0}}}, {}};
  // Pin every instance with a 10 s job, then retire three of them.
  for (int i = 0; i < 4; ++i) c.service(0).submit(10000.0, [](double) {});
  c.service(0).scale_to(1);
  ASSERT_EQ(c.service(0).ready_count(), 1);
  ASSERT_EQ(c.service(0).retiring_count(), 3);
  c.run_for(2.0);
  // 4 cores burned against (1 ready + 3 retiring) * 1 core * request_factor
  // 0.5 = 2 cores requested: exactly 200%, and never past the physical
  // 1/request_factor bound. The skewed version read 4 / 0.5 = 800%.
  const double u = c.utilization_avg(0, 2.0);
  EXPECT_NEAR(u, 2.0, 0.05);
  EXPECT_LE(u, 1.0 / c.service(0).config().request_factor + 1e-9);
}

// Telemetry blackout: sensors gap, ground truth survives, recovery resyncs.
TEST(Cluster, TelemetryBlackoutGapsSeriesButKeepsGroundTruth) {
  Cluster c = make_chain_cluster();
  for (int i = 0; i < 40; ++i)
    c.events().schedule_at(i * 0.1, [&c] { c.submit_request(0); });
  c.run_for(2.0);
  EXPECT_GT(c.series_count_since(0, 2.0), 0u);
  const std::size_t local_before = c.service_latency(0).size();
  const std::size_t e2e_before = c.e2e_latency_all().size();

  c.set_telemetry_blackout(true);
  c.run_for(3.0);
  EXPECT_EQ(c.series_count_since(0, 2.5), 0u);  // no scrape points landed
  EXPECT_EQ(c.api_qps(0, 2.5), 0.0);            // arrival sensor dark too
  EXPECT_EQ(c.service_latency(0).size(), local_before);  // sensors frozen
  // ... but the ground-truth e2e window and counters see through it.
  EXPECT_GT(c.e2e_latency_all().size(), e2e_before);
  const std::uint64_t completed_dark = c.completed();
  EXPECT_GT(completed_dark, 0u);

  c.set_telemetry_blackout(false);
  c.run_for(3.0);
  EXPECT_GT(c.series_count_since(0, 1.5), 0u);  // scraping resumed
  EXPECT_GE(c.completed(), completed_dark);
}

TEST(Cluster, DeterministicAcrossRuns) {
  auto run = [] {
    Cluster c = make_chain_cluster();
    std::vector<double> latencies;
    for (int i = 0; i < 20; ++i)
      c.events().schedule_at(i * 0.05, [&c] { c.submit_request(0); });
    c.run_for(3.0);
    return c.e2e_latency_all().percentile(99.0);
  };
  EXPECT_DOUBLE_EQ(run(), run());
}

}  // namespace
}  // namespace graf::sim
