#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "common/rng.h"
#include "nn/layers.h"
#include "nn/loss.h"
#include "nn/optim.h"

namespace graf::nn {
namespace {

TEST(Linear, OutputShapeAndAffine) {
  Rng rng{1};
  Linear lin{3, 2, rng};
  // Force known weights.
  lin.weight().value = Tensor{{1.0, 0.0}, {0.0, 1.0}, {1.0, 1.0}};
  lin.bias().value = Tensor{{0.5, -0.5}};
  Tape t;
  Var x = t.constant(Tensor{{1.0, 2.0, 3.0}});
  const Tensor& y = t.value(lin.forward(t, x));
  ASSERT_EQ(y.rows(), 1u);
  ASSERT_EQ(y.cols(), 2u);
  EXPECT_DOUBLE_EQ(y(0, 0), 1.0 + 3.0 + 0.5);
  EXPECT_DOUBLE_EQ(y(0, 1), 2.0 + 3.0 - 0.5);
}

TEST(Linear, ParamsExposed) {
  Rng rng{2};
  Linear lin{4, 5, rng};
  EXPECT_EQ(lin.params().size(), 2u);
  EXPECT_EQ(lin.param_count(), 4u * 5u + 5u);
}

TEST(Mlp, DimsValidated) {
  Rng rng{3};
  EXPECT_THROW((Mlp{{4}, 0.0, rng}), std::invalid_argument);
}

TEST(Mlp, ForwardShape) {
  Rng rng{4};
  Mlp mlp{{3, 8, 8, 2}, 0.0, rng};
  Tape t;
  Var x = t.constant(Tensor{5, 3});
  const Tensor& y = t.value(mlp.forward(t, x, rng, false));
  EXPECT_EQ(y.rows(), 5u);
  EXPECT_EQ(y.cols(), 2u);
}

TEST(Mlp, EvalModeDeterministic) {
  Rng rng{5};
  Mlp mlp{{2, 16, 16, 1}, 0.5, rng};
  Tensor x0{{0.3, -0.7}};
  Tape t1;
  const double a = t1.value(mlp.forward(t1, t1.constant(x0), rng, false)).item();
  Tape t2;
  const double b = t2.value(mlp.forward(t2, t2.constant(x0), rng, false)).item();
  EXPECT_DOUBLE_EQ(a, b);
}

TEST(Mlp, LearnsLinearFunction) {
  // y = 2a - 3b + 1 learned to high accuracy by a small MLP with Adam.
  Rng rng{6};
  Mlp mlp{{2, 16, 16, 1}, 0.0, rng};
  Adam opt{mlp.params(), {.lr = 5e-3}};
  Rng data_rng{7};
  Tape tape;
  double final_loss = 1e9;
  for (int it = 0; it < 1500; ++it) {
    Tensor x{32, 2};
    Tensor y{32, 1};
    for (std::size_t i = 0; i < 32; ++i) {
      x(i, 0) = data_rng.uniform(-1.0, 1.0);
      x(i, 1) = data_rng.uniform(-1.0, 1.0);
      y(i, 0) = 2.0 * x(i, 0) - 3.0 * x(i, 1) + 1.0;
    }
    tape.reset();
    Var pred = mlp.forward(tape, tape.constant(x), rng, true);
    Var loss = mse_loss(pred, y);
    mlp.zero_grad();
    tape.backward(loss);
    opt.step();
    final_loss = tape.value(loss).item();
  }
  EXPECT_LT(final_loss, 0.01);
}

TEST(Mlp, SaveLoadRoundTrip) {
  Rng rng{8};
  Mlp a{{3, 10, 10, 1}, 0.25, rng};
  Mlp b{{3, 10, 10, 1}, 0.25, rng};  // different random init

  std::stringstream ss;
  save_params(ss, a.params());
  load_params(ss, b.params());

  Tensor x0{{0.1, 0.2, 0.3}};
  Tape t1;
  const double ya = t1.value(a.forward(t1, t1.constant(x0), rng, false)).item();
  Tape t2;
  const double yb = t2.value(b.forward(t2, t2.constant(x0), rng, false)).item();
  EXPECT_DOUBLE_EQ(ya, yb);
}

TEST(Mlp, LoadRejectsShapeMismatch) {
  Rng rng{9};
  Mlp a{{3, 10, 1}, 0.0, rng};
  Mlp b{{3, 12, 1}, 0.0, rng};
  std::stringstream ss;
  save_params(ss, a.params());
  EXPECT_THROW(load_params(ss, b.params()), std::runtime_error);
}

TEST(Sgd, ConvergesOnQuadratic) {
  // minimize (p - 3)^2
  Param p{Tensor::scalar(0.0)};
  Sgd opt{{&p}, 0.1};
  Tape tape;
  for (int i = 0; i < 200; ++i) {
    tape.reset();
    Var v = tape.param(p);
    Var d = add_scalar(v, -3.0);
    tape.backward(sum_all(mul(d, d)));
    opt.step();
  }
  EXPECT_NEAR(p.value.item(), 3.0, 1e-6);
}

TEST(Adam, ConvergesOnQuadratic) {
  Param p{Tensor::scalar(10.0)};
  Adam opt{{&p}, {.lr = 0.2}};
  Tape tape;
  for (int i = 0; i < 500; ++i) {
    tape.reset();
    Var v = tape.param(p);
    Var d = add_scalar(v, 4.0);  // minimize (p+4)^2
    tape.backward(sum_all(mul(d, d)));
    opt.step();
  }
  EXPECT_NEAR(p.value.item(), -4.0, 1e-3);
}

TEST(Adam, StepIsBoundedByLearningRate) {
  // ADAM's first step magnitude is ~lr regardless of gradient scale.
  Param p{Tensor::scalar(0.0)};
  Adam opt{{&p}, {.lr = 0.5}};
  p.grad = Tensor::scalar(1e6);
  opt.step();
  EXPECT_NEAR(std::abs(p.value.item()), 0.5, 0.01);
}

TEST(Optimizer, ZeroGradClears) {
  Param p{Tensor::scalar(0.0)};
  p.grad = Tensor::scalar(7.0);
  Sgd opt{{&p}, 0.1};
  opt.zero_grad();
  EXPECT_DOUBLE_EQ(p.grad.item(), 0.0);
}

}  // namespace
}  // namespace graf::nn
