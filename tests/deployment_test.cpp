// The Fig. 1 instance-creation model: lone creations take `base` seconds,
// batches complete staggered at `per_extra` intervals.
#include "sim/deployment.h"

#include <gtest/gtest.h>

#include <vector>

namespace graf::sim {
namespace {

TEST(Deployment, SingleCreationTakesBase) {
  EventQueue q;
  Deployment d{q, {.base = 5.5, .per_extra = 2.67, .nodes = 1}};
  double ready_at = -1.0;
  d.request_creation([&] { ready_at = q.now(); });
  q.run_all();
  EXPECT_NEAR(ready_at, 5.5, 1e-9);
}

TEST(Deployment, BatchCompletesStaggered) {
  EventQueue q;
  Deployment d{q, {.base = 5.5, .per_extra = 2.67, .nodes = 1}};
  std::vector<double> ready;
  for (int i = 0; i < 4; ++i)
    d.request_creation([&] { ready.push_back(q.now()); });
  q.run_all();
  ASSERT_EQ(ready.size(), 4u);
  EXPECT_NEAR(ready[0], 5.5, 1e-9);
  EXPECT_NEAR(ready[1], 5.5 + 2.67, 1e-9);
  EXPECT_NEAR(ready[2], 5.5 + 2.0 * 2.67, 1e-9);
  EXPECT_NEAR(ready[3], 5.5 + 3.0 * 2.67, 1e-9);
}

TEST(Deployment, BatchTimesFitPaperFig1) {
  // Paper measurements: 5.5 / 8.7 / 12.5 / 23.6 / 45.6 s for 1/2/4/8/16.
  EventQueue q;
  Deployment d{q, {}};
  const double measured[] = {5.5, 8.7, 12.5, 23.6, 45.6};
  const int batch[] = {1, 2, 4, 8, 16};
  for (int i = 0; i < 5; ++i) {
    const double model = d.batch_completion_time(batch[i]);
    EXPECT_NEAR(model, measured[i], 0.08 * measured[i] + 0.6)
        << "batch of " << batch[i];
  }
}

TEST(Deployment, PipelineIdleAfterDrainResetsToBase) {
  EventQueue q;
  Deployment d{q, {.base = 5.0, .per_extra = 2.0, .nodes = 1}};
  double first = -1.0;
  double second = -1.0;
  d.request_creation([&] { first = q.now(); });
  q.run_all();
  d.request_creation([&] { second = q.now(); });
  q.run_all();
  EXPECT_NEAR(first, 5.0, 1e-9);
  EXPECT_NEAR(second, 10.0, 1e-9);  // 5.0 (idle restart) after the first
}

TEST(Deployment, CancelSuppressesCallback) {
  EventQueue q;
  Deployment d{q, {}};
  bool fired = false;
  const auto ticket = d.request_creation([&] { fired = true; });
  d.cancel(ticket);
  q.run_all();
  EXPECT_FALSE(fired);
  EXPECT_EQ(d.in_flight(), 0u);
}

TEST(Deployment, InFlightTracksPending) {
  EventQueue q;
  Deployment d{q, {}};
  d.request_creation([] {});
  d.request_creation([] {});
  EXPECT_EQ(d.in_flight(), 2u);
  q.run_all();
  EXPECT_EQ(d.in_flight(), 0u);
}

TEST(Deployment, LateJoinerQueuesBehindBusyPipeline) {
  EventQueue q;
  Deployment d{q, {.base = 5.0, .per_extra = 2.0, .nodes = 1}};
  std::vector<double> ready;
  d.request_creation([&] { ready.push_back(q.now()); });
  q.schedule_at(1.0, [&] { d.request_creation([&] { ready.push_back(q.now()); }); });
  q.run_all();
  ASSERT_EQ(ready.size(), 2u);
  EXPECT_NEAR(ready[0], 5.0, 1e-9);
  EXPECT_NEAR(ready[1], 7.0, 1e-9);  // behind the first completion
}

}  // namespace
}  // namespace graf::sim
