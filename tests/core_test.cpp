#include <gtest/gtest.h>

#include <chrono>
#include <cmath>

#include "apps/catalog.h"
#include "core/configuration_solver.h"
#include "core/cost_model.h"
#include "core/latency_predictor.h"
#include "core/resource_controller.h"
#include "core/sample_collector.h"
#include "core/state_collector.h"
#include "core/workload_analyzer.h"
#include "serve/serving_handle.h"
#include "telemetry/metrics.h"
#include "workload/open_loop.h"

namespace graf::core {
namespace {

// ---- WorkloadAnalyzer -------------------------------------------------------

TEST(WorkloadAnalyzer, DistributeIsLinear) {
  WorkloadAnalyzer wa{2, 3};
  wa.set_fanout({{1.0, 2.0, 0.0}, {1.0, 0.0, 1.5}});
  std::vector<double> w{10.0, 20.0};
  const auto l = wa.distribute(w);
  EXPECT_DOUBLE_EQ(l[0], 30.0);   // both APIs hit service 0 once
  EXPECT_DOUBLE_EQ(l[1], 20.0);   // 10 * 2
  EXPECT_DOUBLE_EQ(l[2], 30.0);   // 20 * 1.5
}

TEST(WorkloadAnalyzer, ValidatesShapes) {
  WorkloadAnalyzer wa{2, 3};
  EXPECT_THROW(wa.set_fanout({{1.0, 2.0, 0.0}}), std::invalid_argument);
  std::vector<double> w{1.0};
  EXPECT_THROW(wa.distribute(w), std::invalid_argument);
}

TEST(WorkloadAnalyzer, ReadyAfterFanout) {
  WorkloadAnalyzer wa{1, 2};
  EXPECT_FALSE(wa.ready());
  wa.set_fanout({{1.0, 0.5}});
  EXPECT_TRUE(wa.ready());
}

TEST(WorkloadAnalyzer, UpdateFromLiveTraces) {
  auto topo = apps::online_boutique();
  sim::Cluster c = apps::make_cluster(topo, {.seed = 3});
  workload::OpenLoopConfig g;
  g.rate = workload::Schedule::constant(50.0);
  g.api_weights = topo.api_weights;
  workload::OpenLoopGenerator gen{c, g};
  gen.start(15.0);
  c.run_until(16.0);
  WorkloadAnalyzer wa{c.api_count(), c.service_count()};
  wa.update(c.tracer());
  EXPECT_TRUE(wa.ready());
  // cart-page (api 0) visits every service of the chain exactly once.
  EXPECT_DOUBLE_EQ(wa.fanout()[0][0], 1.0);
  EXPECT_DOUBLE_EQ(wa.fanout()[0][4], 1.0);
}

TEST(ExpectedFanout, WeighsProbabilisticBranches) {
  const auto topo = apps::online_boutique();
  const auto f = expected_fanout(topo);
  // home-page calls cart with probability 0.6.
  EXPECT_NEAR(f[2][2], 0.6, 1e-12);
  // product-page reaches product directly once plus 0.8x via recommendation.
  EXPECT_NEAR(f[1][3], 1.8, 1e-12);
}

// ---- StateCollector ---------------------------------------------------------

TEST(StateCollector, SnapshotsClusterState) {
  auto topo = apps::bookinfo();
  sim::Cluster c = apps::make_cluster(topo, {.seed = 5});
  workload::OpenLoopConfig g;
  g.rate = workload::Schedule::constant(30.0);
  workload::OpenLoopGenerator gen{c, g};
  gen.start(10.0);
  c.run_until(10.0);
  StateCollector sc{c, 5.0};
  const auto st = sc.collect();
  EXPECT_EQ(st.api_qps.size(), c.api_count());
  EXPECT_NEAR(st.api_qps[0], 30.0, 8.0);
  EXPECT_EQ(st.quota.size(), c.service_count());
  for (double q : st.quota) EXPECT_GT(q, 0.0);
  EXPECT_GT(st.utilization[0], 0.0);
}

// ---- ConfigurationSolver ----------------------------------------------------

gnn::Dag chain2() {
  gnn::Dag d;
  d.add_node("a");
  d.add_node("b");
  d.add_edge(0, 1);
  return d;
}

/// Train a tiny model on an analytic monotone function once for the suite.
gnn::LatencyModel& solver_model() {
  static gnn::LatencyModel model = [] {
    gnn::MpnnConfig cfg;
    cfg.embed_dim = 8;
    cfg.mpnn_hidden = 8;
    cfg.readout_hidden = 24;
    cfg.dropout_p = 0.0;
    gnn::LatencyModel m{chain2(), cfg, 13};
    Rng rng{17};
    gnn::Dataset data;
    for (int i = 0; i < 2500; ++i) {
      gnn::Sample s;
      const double w = rng.uniform(20.0, 80.0);
      s.workload = {w, w};
      s.quota = {rng.uniform(300.0, 2000.0), rng.uniform(300.0, 2000.0)};
      // latency ~ sum of demand/quota hyperbolae, ms
      s.latency_ms = 40.0 * 1000.0 / s.quota[0] + 80.0 * 1000.0 / s.quota[1] +
                     0.8 * w;
      data.push_back(std::move(s));
    }
    gnn::TrainConfig tc;
    tc.iterations = 2500;
    tc.batch_size = 64;
    tc.lr = 2e-3;
    tc.lr_decay_every = 800;
    tc.eval_every = 250;
    m.fit(data, {}, tc);
    return m;
  }();
  return model;
}

TEST(ConfigurationSolver, RespectsBounds) {
  ConfigurationSolver solver{solver_model(), {}};
  std::vector<double> w{50.0, 50.0};
  std::vector<double> lo{400.0, 400.0};
  std::vector<double> hi{1800.0, 1800.0};
  const auto res = solver.solve(w, 200.0, lo, hi);
  ASSERT_EQ(res.quota.size(), 2u);
  for (std::size_t i = 0; i < 2; ++i) {
    EXPECT_GE(res.quota[i], lo[i] - 1e-9);
    EXPECT_LE(res.quota[i], hi[i] + 1e-9);
  }
}

TEST(ConfigurationSolver, TighterSloCostsMoreCpu) {
  ConfigurationSolver solver{solver_model(), {}};
  std::vector<double> w{50.0, 50.0};
  std::vector<double> lo{300.0, 300.0};
  std::vector<double> hi{2000.0, 2000.0};
  const auto tight = solver.solve(w, 150.0, lo, hi);
  const auto loose = solver.solve(w, 280.0, lo, hi);
  const double total_tight = tight.quota[0] + tight.quota[1];
  const double total_loose = loose.quota[0] + loose.quota[1];
  EXPECT_GT(total_tight, total_loose);
}

TEST(ConfigurationSolver, AllocatesMoreToExpensiveService) {
  // Service b has 2x the demand of a; minimizing total quota under the SLO
  // must give b more CPU.
  ConfigurationSolver solver{solver_model(), {}};
  std::vector<double> w{50.0, 50.0};
  std::vector<double> lo{300.0, 300.0};
  std::vector<double> hi{2000.0, 2000.0};
  const auto res = solver.solve(w, 180.0, lo, hi);
  EXPECT_GT(res.quota[1], res.quota[0]);
}

TEST(ConfigurationSolver, PredictionNearSloWhenBinding) {
  ConfigurationSolver solver{solver_model(), {}};
  std::vector<double> w{60.0, 60.0};
  std::vector<double> lo{300.0, 300.0};
  std::vector<double> hi{2000.0, 2000.0};
  const double slo = 160.0;
  const auto res = solver.solve(w, slo, lo, hi);
  // The solver minimizes until the (margin-adjusted) SLO binds.
  EXPECT_LT(res.predicted_ms, slo * 1.05);
  EXPECT_GT(res.predicted_ms, slo * 0.6);
}

TEST(ConfigurationSolver, ValidatesInputs) {
  ConfigurationSolver solver{solver_model(), {}};
  std::vector<double> w{50.0, 50.0};
  std::vector<double> lo{300.0, 300.0};
  std::vector<double> hi{200.0, 2000.0};  // lo > hi
  EXPECT_THROW(solver.solve(w, 100.0, lo, hi), std::invalid_argument);
  std::vector<double> hi_ok{2000.0, 2000.0};
  EXPECT_THROW(solver.solve(w, -5.0, lo, hi_ok), std::invalid_argument);
  std::vector<double> w_bad{50.0};
  EXPECT_THROW(solver.solve(w_bad, 100.0, lo, hi_ok), std::invalid_argument);
}

TEST(ConfigurationSolver, LossAtMatchesStructure) {
  ConfigurationSolver solver{solver_model(), {.rho = 50.0, .slo_margin = 1.0}};
  std::vector<double> w{50.0, 50.0};
  std::vector<double> hi{2000.0, 2000.0};
  std::vector<double> generous{2000.0, 2000.0};
  std::vector<double> starved{300.0, 300.0};
  // Generous quotas: no penalty, loss == normalized quota == 1.
  EXPECT_NEAR(solver.loss_at(w, 1e6, generous, hi), 1.0, 1e-9);
  // Starved quotas at an impossible SLO: penalty dominates.
  EXPECT_GT(solver.loss_at(w, 10.0, starved, hi), 1.0);
}

TEST(ConfigurationSolver, LossAtAppliesSloMargin) {
  // Regression: loss_at() used to penalize against the raw SLO while solve()
  // descends against slo_margin * SLO, so a prediction sitting between the
  // margined target and the SLO reported a deceptively flat (zero-penalty)
  // landscape. Place the prediction at 95% of the SLO with a 0.9 margin:
  // the margin-aware loss must show a positive penalty there.
  auto& model = solver_model();
  std::vector<double> w{50.0, 50.0};
  std::vector<double> hi{2000.0, 2000.0};
  std::vector<double> quota{800.0, 800.0};
  const double pred = model.predict(w, quota);
  const double slo = pred / 0.95;
  const double base = (quota[0] + quota[1]) / (hi[0] + hi[1]);

  ConfigurationSolver margined{model, {.rho = 50.0, .slo_margin = 0.9}};
  const double loss = margined.loss_at(w, slo, quota, hi);
  EXPECT_NEAR(loss, base + 50.0 * (pred / (0.9 * slo) - 1.0), 1e-9);
  EXPECT_GT(loss, base + 1e-6);

  // With a unit margin the prediction is below target: pure quota term,
  // exactly the objective solve() sees.
  ConfigurationSolver unit{model, {.rho = 50.0, .slo_margin = 1.0}};
  EXPECT_NEAR(unit.loss_at(w, slo, quota, hi), base, 1e-9);
}

// ---- ResourceController -----------------------------------------------------

TEST(ResourceController, Eq7CeilsToInstanceUnits) {
  auto& model = solver_model();
  ConfigurationSolver solver{model, {}};
  WorkloadAnalyzer analyzer{1, 2};
  analyzer.set_fanout({{1.0, 1.0}});
  ResourceController rc{model, solver, analyzer, {300.0, 300.0}, {2000.0, 2000.0},
                        {1000.0, 1000.0}};
  gnn::Dataset ref;
  gnn::Sample s;
  s.workload = {60.0, 60.0};
  s.quota = {1000.0, 1000.0};
  s.latency_ms = 100.0;
  ref.push_back(s);
  rc.set_training_reference(ref);

  std::vector<Qps> api{50.0};
  const auto plan = rc.plan(api, 200.0);
  ASSERT_EQ(plan.instances.size(), 2u);
  for (std::size_t i = 0; i < 2; ++i) {
    EXPECT_EQ(plan.instances[i],
              static_cast<int>(std::ceil(plan.quota[i] / 1000.0)));
    EXPECT_GE(plan.instances[i], 1);
  }
  EXPECT_DOUBLE_EQ(plan.scale_factor, 1.0);  // within trained region
}

TEST(ResourceController, WorkloadScalingKicksInBeyondTrainedRegion) {
  auto& model = solver_model();
  ConfigurationSolver solver{model, {}};
  WorkloadAnalyzer analyzer{1, 2};
  analyzer.set_fanout({{1.0, 1.0}});
  ResourceController rc{model, solver, analyzer, {300.0, 300.0}, {2000.0, 2000.0},
                        {1000.0, 1000.0}};
  gnn::Dataset ref;
  gnn::Sample s;
  s.workload = {60.0, 60.0};
  s.quota = {1000.0, 1000.0};
  s.latency_ms = 100.0;
  ref.push_back(s);
  rc.set_training_reference(ref);

  std::vector<Qps> in_region{50.0};
  std::vector<Qps> beyond{240.0};  // 4x the trained max
  const auto base = rc.plan(in_region, 200.0);
  const auto scaled = rc.plan(beyond, 200.0);
  EXPECT_NEAR(scaled.scale_factor, 4.0, 1e-9);
  // Quota scales roughly with the factor (same solver point rescaled).
  const double base_total = base.quota[0] + base.quota[1];
  const double scaled_total = scaled.quota[0] + scaled.quota[1];
  EXPECT_GT(scaled_total, 2.0 * base_total);
}

TEST(ResourceController, ApplyScalesCluster) {
  auto topo = apps::bookinfo();
  sim::Cluster c = apps::make_cluster(topo, {.seed = 9});
  AllocationPlan plan;
  plan.instances = {3, 2, 4, 1};
  plan.quota = {3000.0, 2000.0, 4000.0, 1000.0};
  ResourceController::apply(c, plan);
  EXPECT_EQ(c.service(0).target_count(), 3);
  EXPECT_EQ(c.service(2).target_count(), 4);
}

// Regression: after workload-scaling by k, quota[i] = solver.quota[i] * k
// could exceed the replica cap that Service::scale_to silently enforces —
// so the published predicted_ms described an allocation that never landed.
// The plan must clamp, flag saturation, and re-predict at the clamped point.
TEST(ResourceController, SaturatedPlanClampsAndRePredicts) {
  auto& model = solver_model();
  ConfigurationSolver solver{model, {}};
  WorkloadAnalyzer analyzer{1, 2};
  analyzer.set_fanout({{1.0, 1.0}});
  ResourceController rc{model, solver, analyzer, {300.0, 300.0}, {2000.0, 2000.0},
                        {1000.0, 1000.0}};
  gnn::Dataset ref;
  gnn::Sample s;
  s.workload = {60.0, 60.0};
  s.quota = {1000.0, 1000.0};
  s.latency_ms = 100.0;
  ref.push_back(s);
  rc.set_training_reference(ref);
  rc.set_max_instances({1, 1});  // 1 replica x 1000 mc cap per service

  std::vector<Qps> beyond{240.0};  // k = 4: unclamped quota >= 4 * lo = 1200 mc
  const auto plan = rc.plan(beyond, 200.0);
  EXPECT_TRUE(plan.saturated);
  ASSERT_EQ(plan.instances.size(), 2u);
  for (std::size_t i = 0; i < 2; ++i) {
    EXPECT_EQ(plan.instances[i], 1);
    EXPECT_LE(plan.quota[i], 1000.0 + 1e-9);
  }
  // predicted_ms reflects the clamped allocation (scaled back into the
  // trained region by k), not the solver's unclamped optimum.
  const double repredicted =
      model.predict(std::vector<double>{60.0, 60.0},
                    std::vector<double>{plan.quota[0] / 4.0, plan.quota[1] / 4.0});
  EXPECT_NEAR(plan.predicted_ms, repredicted, 1e-9);
  // Less CPU than the solver wanted cannot be faster (monotone model).
  EXPECT_GE(plan.predicted_ms, plan.solver.predicted_ms - 1e-9);
}

TEST(ResourceController, DegradesWhenAnalyzerNotReady) {
  auto& model = solver_model();
  ConfigurationSolver solver{model, {}};
  WorkloadAnalyzer analyzer{1, 2};  // no fan-out observed yet (cold start)
  ResourceController rc{model, solver, analyzer, {300.0, 300.0}, {2000.0, 2000.0},
                        {1000.0, 1000.0}};
  std::vector<Qps> api{50.0};
  const auto plan = rc.plan(api, 200.0);
  EXPECT_TRUE(plan.degraded);
  EXPECT_FALSE(plan.feasible);
  // With no feasible plan in hand, the fallback provisions at the hi bounds.
  ASSERT_EQ(plan.quota.size(), 2u);
  EXPECT_DOUBLE_EQ(plan.quota[0], 2000.0);
  EXPECT_EQ(plan.instances[0], 2);
  EXPECT_EQ(rc.degraded_plans(), 1u);
}

TEST(ResourceController, InfeasibleSolveFallsBackToLastFeasiblePlan) {
  auto& model = solver_model();
  ConfigurationSolver solver{model, {}};
  WorkloadAnalyzer analyzer{1, 2};
  analyzer.set_fanout({{1.0, 1.0}});
  ResourceController rc{model, solver, analyzer, {300.0, 300.0}, {2000.0, 2000.0},
                        {1000.0, 1000.0}};
  gnn::Dataset ref;
  gnn::Sample s;
  s.workload = {60.0, 60.0};
  s.quota = {1000.0, 1000.0};
  s.latency_ms = 100.0;
  ref.push_back(s);
  rc.set_training_reference(ref);

  std::vector<Qps> api{50.0};
  const auto good = rc.plan(api, 280.0);  // loose SLO: comfortably feasible
  ASSERT_TRUE(good.feasible);
  ASSERT_FALSE(good.degraded);
  ASSERT_TRUE(rc.has_last_good());

  const auto fallback = rc.plan(api, 1.0);  // impossible SLO: solve infeasible
  EXPECT_TRUE(fallback.degraded);
  EXPECT_EQ(fallback.instances, good.instances);
  EXPECT_EQ(fallback.quota, good.quota);
  EXPECT_EQ(rc.degraded_plans(), 1u);
}

TEST(ResourceController, ServedModelShapeMismatchDegradesInsteadOfThrowing) {
  auto& model = solver_model();
  ConfigurationSolver solver{model, {}};
  WorkloadAnalyzer analyzer{1, 2};
  analyzer.set_fanout({{1.0, 1.0}});
  ResourceController rc{model, solver, analyzer, {300.0, 300.0}, {2000.0, 2000.0},
                        {1000.0, 1000.0}};
  gnn::Dataset ref;
  gnn::Sample s;
  s.workload = {60.0, 60.0};
  s.quota = {1000.0, 1000.0};
  s.latency_ms = 100.0;
  ref.push_back(s);
  rc.set_training_reference(ref);
  std::vector<Qps> api{50.0};
  const auto good = rc.plan(api, 280.0);
  ASSERT_FALSE(good.degraded);

  // Serve a model trained for a different topology (3 nodes, not 2).
  gnn::Dag wrong;
  wrong.add_node("a");
  wrong.add_node("b");
  wrong.add_node("c");
  wrong.add_edge(0, 1);
  wrong.add_edge(1, 2);
  serve::ServingHandle handle{
      std::make_shared<gnn::LatencyModel>(wrong, gnn::MpnnConfig{}, 7)};
  rc.set_serving_handle(&handle);  // must not throw anymore

  const auto plan = rc.plan(api, 280.0);
  EXPECT_TRUE(plan.degraded);
  EXPECT_EQ(plan.instances, good.instances);  // last feasible plan reused

  // A compatible model heals the loop: back to clean solves.
  handle.swap(std::make_shared<gnn::LatencyModel>(model.clone()));
  const auto healed = rc.plan(api, 280.0);
  EXPECT_FALSE(healed.degraded);
}

// ---- Plan cache -------------------------------------------------------------

TEST(ResourceController, PlanCacheHitsSkipSolverAndInvalidateOnSwap) {
  auto& model = solver_model();
  ConfigurationSolver solver{model, {}};
  WorkloadAnalyzer analyzer{1, 2};
  analyzer.set_fanout({{1.0, 1.0}});
  ResourceController rc{model, solver, analyzer, {300.0, 300.0}, {2000.0, 2000.0},
                        {1000.0, 1000.0}};
  gnn::Dataset ref;
  gnn::Sample s;
  s.workload = {60.0, 60.0};
  s.quota = {1000.0, 1000.0};
  s.latency_ms = 100.0;
  ref.push_back(s);
  rc.set_training_reference(ref);
  telemetry::MetricsRegistry registry;
  rc.set_metrics(&registry);
  auto& solver_iters = registry.counter("core.solver_iterations_total");

  std::vector<Qps> api{50.0};
  const auto first = rc.plan(api, 200.0);
  ASSERT_FALSE(first.degraded);
  EXPECT_EQ(rc.plan_cache_hits(), 0u);
  EXPECT_EQ(rc.plan_cache_misses(), 1u);
  const double iters_after_first = solver_iters.value();
  EXPECT_GT(iters_after_first, 0.0);

  // The steady state: identical workload and SLO next sync period. The
  // cached plan must come back verbatim without touching the solver, and a
  // hit must be far below solve cost (<1ms even on a loaded CI box).
  const auto t0 = std::chrono::steady_clock::now();
  const auto second = rc.plan(api, 200.0);
  const auto hit_us = std::chrono::duration_cast<std::chrono::microseconds>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
  EXPECT_EQ(rc.plan_cache_hits(), 1u);
  EXPECT_EQ(solver_iters.value(), iters_after_first);  // solver skipped
  EXPECT_DOUBLE_EQ(registry.counter("core.plan_cache.hits").value(), 1.0);
  EXPECT_GT(registry.counter("core.plan_cache.saved_us").value(), 0.0);
  EXPECT_EQ(second.quota, first.quota);
  EXPECT_EQ(second.instances, first.instances);
  EXPECT_DOUBLE_EQ(second.predicted_ms, first.predicted_ms);
  EXPECT_LT(hit_us, 1000);

  // A tiny workload wiggle stays inside the ~2% quantization bucket...
  std::vector<Qps> wiggle{50.2};
  rc.plan(wiggle, 200.0);
  EXPECT_EQ(rc.plan_cache_hits(), 2u);
  // ...but a different SLO is a different key.
  rc.plan(api, 240.0);
  EXPECT_EQ(rc.plan_cache_hits(), 2u);
  EXPECT_EQ(rc.plan_cache_misses(), 2u);

  // Hot-swapping the served model bumps the generation: the very same
  // (workload, SLO) must re-solve through the new model, not serve a plan
  // computed by the old one.
  serve::ServingHandle handle{std::make_shared<gnn::LatencyModel>(model.clone())};
  rc.set_serving_handle(&handle);
  handle.swap(std::make_shared<gnn::LatencyModel>(model.clone()));
  const auto after_swap = rc.plan(api, 200.0);
  EXPECT_FALSE(after_swap.degraded);
  EXPECT_EQ(rc.plan_cache_hits(), 2u);
  EXPECT_GT(solver_iters.value(), iters_after_first);
}

TEST(ResourceController, PlanCacheInvalidatesOnDegradedEntryAndCanDisable) {
  auto& model = solver_model();
  ConfigurationSolver solver{model, {}};
  WorkloadAnalyzer analyzer{1, 2};
  analyzer.set_fanout({{1.0, 1.0}});
  ResourceController rc{model, solver, analyzer, {300.0, 300.0}, {2000.0, 2000.0},
                        {1000.0, 1000.0}};
  gnn::Dataset ref;
  gnn::Sample s;
  s.workload = {60.0, 60.0};
  s.quota = {1000.0, 1000.0};
  s.latency_ms = 100.0;
  ref.push_back(s);
  rc.set_training_reference(ref);
  telemetry::MetricsRegistry registry;
  rc.set_metrics(&registry);
  auto& solver_iters = registry.counter("core.solver_iterations_total");

  std::vector<Qps> api{50.0};
  rc.plan(api, 200.0);
  rc.plan(api, 200.0);
  ASSERT_EQ(rc.plan_cache_hits(), 1u);

  // An impossible SLO forces the degraded path; entering it clears the
  // cache, so the previously-hot key must miss and re-solve afterwards.
  const auto degraded = rc.plan(api, 1.0);
  ASSERT_TRUE(degraded.degraded);
  const double iters_before = solver_iters.value();
  rc.plan(api, 200.0);
  EXPECT_EQ(rc.plan_cache_hits(), 1u);
  EXPECT_GT(solver_iters.value(), iters_before);

  // Degraded plans themselves are never cached: a repeat of the impossible
  // SLO runs the full degraded path again (counted), not a cache hit.
  rc.plan(api, 1.0);
  rc.plan(api, 1.0);
  EXPECT_EQ(rc.degraded_plans(), 3u);
  EXPECT_EQ(rc.plan_cache_hits(), 1u);

  // Capacity 0 disables caching entirely.
  rc.set_plan_cache_capacity(0);
  rc.plan(api, 200.0);
  rc.plan(api, 200.0);
  EXPECT_EQ(rc.plan_cache_hits(), 1u);
}

// ---- SampleCollector --------------------------------------------------------

TEST(SearchSpace, VolumeRatio) {
  SearchSpace sp;
  sp.lo = {500.0, 1000.0};
  sp.hi = {1500.0, 2000.0};
  // Each dimension keeps 1000/2000 = 0.5 -> 0.25 total.
  EXPECT_NEAR(sp.volume_ratio(0.0, 2000.0), 0.25, 1e-12);
}

TEST(SampleCollector, CollectsLabeledSamples) {
  auto topo = apps::bookinfo();
  sim::Cluster c = apps::make_cluster(topo, {.seed = 21});
  WorkloadAnalyzer analyzer{c.api_count(), c.service_count()};
  SampleCollectorConfig cfg;
  cfg.window = 4.0;
  cfg.warmup = 1.0;
  cfg.flush = 1.0;
  SampleCollector collector{c, analyzer, cfg};
  SearchSpace space;
  space.lo.assign(4, 500.0);
  space.hi.assign(4, 2000.0);
  std::vector<Qps> base{40.0};
  const auto ds = collector.collect(25, space, base, 0.6, 1.0);
  ASSERT_EQ(ds.size(), 25u);
  for (const auto& s : ds) {
    EXPECT_EQ(s.workload.size(), 4u);
    EXPECT_EQ(s.quota.size(), 4u);
    EXPECT_GT(s.latency_ms, 0.0);
    for (std::size_t i = 0; i < 4; ++i) {
      EXPECT_GE(s.quota[i], 500.0);
      EXPECT_LE(s.quota[i], 2000.0);
    }
  }
  EXPECT_TRUE(analyzer.ready());
}

TEST(SampleCollector, ReduceSearchSpaceShrinksVolume) {
  auto topo = apps::bookinfo();
  sim::Cluster c = apps::make_cluster(topo, {.seed = 23});
  WorkloadAnalyzer analyzer{c.api_count(), c.service_count()};
  SampleCollectorConfig cfg;
  cfg.probe_window = 3.0;
  cfg.warmup = 1.0;
  cfg.flush = 0.5;
  SampleCollector collector{c, analyzer, cfg};
  std::vector<Qps> base{40.0};
  const auto space = collector.reduce_search_space(base, 200.0);
  ASSERT_EQ(space.lo.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_GE(space.lo[i], cfg.quota_floor);
    EXPECT_LE(space.hi[i], cfg.quota_hi);
    EXPECT_LT(space.lo[i], space.hi[i]);
  }
  EXPECT_LT(space.volume_ratio(cfg.quota_floor, cfg.quota_hi), 1.0);
}

TEST(SampleCollector, SimulatedSecondsTrackClusterClockAcrossRejections) {
  // Regression: the rejected-sample path used to skip billing the flush,
  // so simulated_seconds() under-reported the Table-3 time budget whenever
  // a window was discarded. Every second the cluster clock advances during
  // collection — calibration, warmup, window, and the flush after each
  // rejected draw — must land in simulated_seconds().
  auto topo = apps::bookinfo();
  sim::Cluster c = apps::make_cluster(topo, {.seed = 27});
  WorkloadAnalyzer analyzer{c.api_count(), c.service_count()};
  SampleCollectorConfig cfg;
  cfg.window = 1.0;
  cfg.warmup = 0.5;
  cfg.flush = 0.5;
  cfg.min_completions = 1000000;  // unreachable: every window is rejected
  SampleCollector collector{c, analyzer, cfg};
  SearchSpace space;
  space.lo.assign(4, 500.0);
  space.hi.assign(4, 2000.0);
  std::vector<Qps> base{40.0};
  const Seconds t0 = c.now();
  const auto rejected = collector.collect(1, space, base, 0.8, 1.0);
  EXPECT_TRUE(rejected.empty());
  EXPECT_NEAR(collector.simulated_seconds(), c.now() - t0, 1e-6);

  // The accepted path must agree with the clock too.
  cfg.min_completions = 10;
  SampleCollector accepting{c, analyzer, cfg};
  const Seconds t1 = c.now();
  const auto ds = accepting.collect(3, space, base, 0.8, 1.0);
  EXPECT_EQ(ds.size(), 3u);
  EXPECT_NEAR(accepting.simulated_seconds(), c.now() - t1, 1e-6);
}

TEST(SampleCollector, MeasureTailReturnsPositive) {
  auto topo = apps::bookinfo();
  sim::Cluster c = apps::make_cluster(topo, {.seed = 25});
  WorkloadAnalyzer analyzer{c.api_count(), c.service_count()};
  SampleCollector collector{c, analyzer, {}};
  for (int s = 0; s < 4; ++s) c.apply_total_quota(s, 2000.0, 1000.0);
  std::vector<Qps> base{40.0};
  const double tail = collector.measure_tail(base, 8.0, 99.0);
  EXPECT_GT(tail, 10.0);
  EXPECT_LT(tail, 500.0);
}

// ---- Cost model (Table 3) ---------------------------------------------------

TEST(CostModel, Table3PaperNumbers) {
  const auto c = training_cost(50000, 15.0, 16.0);
  EXPECT_NEAR(c.load_gen_hours, 208.3, 0.1);
  EXPECT_NEAR(c.worker_hours, 208.3, 0.1);
  EXPECT_NEAR(c.load_gen_usd, 20.83, 0.05);
  EXPECT_NEAR(c.worker_usd, 82.92, 0.05);
  EXPECT_NEAR(c.gpu_usd, 8.42, 0.05);
  EXPECT_NEAR(c.total_usd, 112.17, 0.15);
}

TEST(CostModel, ProfitGrowsWithPeriodAndSaving) {
  const auto c = training_cost(50000);
  EXPECT_LT(net_profit_usd(10.0, 1.0, c), net_profit_usd(10.0, 30.0, c));
  EXPECT_LT(net_profit_usd(5.0, 30.0, c), net_profit_usd(50.0, 30.0, c));
}

TEST(CostModel, BreakevenInverseInSaving) {
  const auto c = training_cost(50000);
  EXPECT_GT(breakeven_days(5.0, c), breakeven_days(50.0, c));
  EXPECT_TRUE(std::isinf(breakeven_days(0.0, c)));
}

}  // namespace
}  // namespace graf::core
