// Processor-sharing semantics of a single instance: exact completion times
// under sharing, the 1-core-per-job cap, vertical quota changes, and CPU
// accounting.
#include "sim/instance.h"

#include <gtest/gtest.h>

#include <memory>

namespace graf::sim {
namespace {

TEST(Instance, SingleJobAtLowQuotaRunsAtQuotaSpeed) {
  EventQueue q;
  Instance inst{1, 0.5, q};  // half a core
  double done_at = -1.0;
  inst.add_job(0.1, [&] { done_at = q.now(); });  // 0.1 core-seconds
  q.run_all();
  EXPECT_NEAR(done_at, 0.2, 1e-9);  // 0.1 / 0.5
}

TEST(Instance, SingleJobCappedAtOneCore) {
  EventQueue q;
  Instance inst{1, 4.0, q};  // plenty of quota
  double done_at = -1.0;
  inst.add_job(0.1, [&] { done_at = q.now(); });
  q.run_all();
  EXPECT_NEAR(done_at, 0.1, 1e-9);  // a single-threaded job can't exceed 1 core
}

TEST(Instance, TwoJobsShareQuota) {
  EventQueue q;
  Instance inst{1, 1.0, q};
  double first = -1.0;
  double second = -1.0;
  inst.add_job(0.1, [&] { first = q.now(); });
  inst.add_job(0.1, [&] { second = q.now(); });
  q.run_all();
  // Both share 1 core: each runs at 0.5 cores until the first finishes at
  // t=0.2; they have identical remaining work so both finish together.
  EXPECT_NEAR(first, 0.2, 1e-9);
  EXPECT_NEAR(second, 0.2, 1e-9);
}

TEST(Instance, UnequalJobsFinishInWorkOrder) {
  EventQueue q;
  Instance inst{1, 1.0, q};
  double small = -1.0;
  double big = -1.0;
  inst.add_job(0.1, [&] { small = q.now(); });
  inst.add_job(0.3, [&] { big = q.now(); });
  q.run_all();
  // Shared at 0.5 cores each: small done at 0.2 (0.1/0.5). Then big has
  // 0.3 - 0.1 = 0.2 left, alone at 1.0 core: done at 0.4.
  EXPECT_NEAR(small, 0.2, 1e-9);
  EXPECT_NEAR(big, 0.4, 1e-9);
}

TEST(Instance, LateArrivalSharesRemaining) {
  EventQueue q;
  Instance inst{1, 1.0, q};
  double a = -1.0;
  double b = -1.0;
  inst.add_job(0.2, [&] { a = q.now(); });
  q.schedule_at(0.1, [&] { inst.add_job(0.2, [&] { b = q.now(); }); });
  q.run_all();
  // a alone until 0.1 (0.1 done), then shares: each at 0.5. a needs 0.1
  // more -> done at 0.3. b then alone with 0.1 left -> done at 0.4.
  EXPECT_NEAR(a, 0.3, 1e-9);
  EXPECT_NEAR(b, 0.4, 1e-9);
}

TEST(Instance, JobRateReflectsSharingAndCap) {
  EventQueue q;
  Instance inst{1, 2.0, q};
  EXPECT_DOUBLE_EQ(inst.job_rate(), 0.0);
  inst.add_job(10.0, [] {});
  EXPECT_DOUBLE_EQ(inst.job_rate(), 1.0);  // capped
  inst.add_job(10.0, [] {});
  EXPECT_DOUBLE_EQ(inst.job_rate(), 1.0);  // 2 cores / 2 jobs
  inst.add_job(10.0, [] {});
  EXPECT_NEAR(inst.job_rate(), 2.0 / 3.0, 1e-12);
}

TEST(Instance, QuotaChangeMidFlight) {
  EventQueue q;
  Instance inst{1, 0.5, q};
  double done = -1.0;
  inst.add_job(0.2, [&] { done = q.now(); });
  q.schedule_at(0.2, [&] { inst.set_quota_cores(1.0); });
  q.run_all();
  // 0.1 core-s done by t=0.2 at 0.5 cores; remaining 0.1 at 1.0 core.
  EXPECT_NEAR(done, 0.3, 1e-9);
}

TEST(Instance, CpuUsageAccounting) {
  EventQueue q;
  Instance inst{1, 0.5, q};
  inst.add_job(0.1, [] {});
  q.run_all();  // finishes at 0.2s having burned 0.1 core-seconds
  EXPECT_NEAR(inst.drain_cpu_usage(), 0.1, 1e-9);
  EXPECT_NEAR(inst.drain_cpu_usage(), 0.0, 1e-12);  // drained
}

TEST(Instance, CpuUsageWithSharing) {
  EventQueue q;
  Instance inst{1, 1.0, q};
  inst.add_job(0.2, [] {});
  inst.add_job(0.2, [] {});
  q.run_all();
  EXPECT_NEAR(inst.drain_cpu_usage(), 0.4, 1e-9);
}

TEST(Instance, ClearJobsSuppressesCallbacks) {
  EventQueue q;
  Instance inst{1, 1.0, q};
  bool fired = false;
  inst.add_job(1.0, [&] { fired = true; });
  q.schedule_at(0.1, [&] { inst.clear_jobs(); });
  q.run_all();
  EXPECT_FALSE(fired);
  EXPECT_TRUE(inst.idle());
}

TEST(Instance, RetireFlagDoesNotStopResidentJobs) {
  EventQueue q;
  Instance inst{1, 1.0, q};
  bool fired = false;
  inst.add_job(0.1, [&] { fired = true; });
  inst.retire();
  q.run_all();
  EXPECT_TRUE(fired);
}

TEST(Instance, RejectsNonPositiveQuota) {
  EventQueue q;
  EXPECT_THROW((Instance{1, 0.0, q}), std::invalid_argument);
  Instance inst{1, 1.0, q};
  EXPECT_THROW(inst.set_quota_cores(-1.0), std::invalid_argument);
}

TEST(Instance, CompletionCallbackMayAddJob) {
  EventQueue q;
  Instance inst{1, 1.0, q};
  double second_done = -1.0;
  inst.add_job(0.1, [&] {
    inst.add_job(0.1, [&] { second_done = q.now(); });
  });
  q.run_all();
  EXPECT_NEAR(second_done, 0.2, 1e-9);
}

TEST(Instance, PendingCompletionEventSurvivesDestruction) {
  // Regression (caught by TSan/ASan): add_job schedules a completion check
  // that captures the instance; clear_jobs() leaves the instance idle, a
  // retiring instance is then reaped (destroyed) — and the still-queued
  // event used to read the freed instance's epoch counter. The liveness
  // token must make the stale event a no-op instead.
  EventQueue q;
  auto inst = std::make_unique<Instance>(1, 1.0, q);
  inst->add_job(0.1, [] {});  // queues a completion check at t = 0.1
  inst->clear_jobs();
  inst.reset();  // freed with the event still pending
  q.run_all();   // must not touch freed memory (sanitizers verify)
  SUCCEED();
}

}  // namespace
}  // namespace graf::sim
