// Chaos integration: the full GRAF control loop driven through every fault
// class the injector knows. The contract under test (ISSUE acceptance): the
// controller never throws, raises `core.degraded` while it is coasting on a
// fallback plan, and recovers — gauge back to 0 — within a few control
// ticks of the fault clearing.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>
#include <vector>

#include "common/rng.h"
#include "core/configuration_solver.h"
#include "core/graf_controller.h"
#include "core/resource_controller.h"
#include "core/workload_analyzer.h"
#include "gnn/latency_model.h"
#include "sim/cluster.h"
#include "sim/fault_injector.h"
#include "telemetry/metrics.h"
#include "workload/open_loop.h"

namespace graf {
namespace {

gnn::Dag chain2() {
  gnn::Dag d;
  d.add_node("a");
  d.add_node("b");
  d.add_edge(0, 1);
  return d;
}

/// Tiny model trained on an analytic 2-service latency surface, once for
/// the file. Accuracy is irrelevant here — the chaos contract is about the
/// control loop's survival, not its plan quality.
gnn::LatencyModel& chaos_model() {
  static gnn::LatencyModel model = [] {
    gnn::MpnnConfig cfg;
    cfg.embed_dim = 8;
    cfg.mpnn_hidden = 8;
    cfg.readout_hidden = 24;
    cfg.dropout_p = 0.0;
    gnn::LatencyModel m{chain2(), cfg, 13};
    Rng rng{17};
    gnn::Dataset data;
    for (int i = 0; i < 2500; ++i) {
      gnn::Sample s;
      const double w = rng.uniform(20.0, 80.0);
      s.workload = {w, w};
      s.quota = {rng.uniform(300.0, 2000.0), rng.uniform(300.0, 2000.0)};
      s.latency_ms = 40.0 * 1000.0 / s.quota[0] + 80.0 * 1000.0 / s.quota[1] +
                     0.8 * w;
      data.push_back(std::move(s));
    }
    gnn::TrainConfig tc;
    tc.iterations = 2500;
    tc.batch_size = 64;
    tc.lr = 2e-3;
    tc.lr_decay_every = 800;
    tc.eval_every = 250;
    m.fit(data, {}, tc);
    return m;
  }();
  return model;
}

/// Light per-request demands so every quota the solver can pick inside the
/// [lo, hi] bounds below keeps the queues stable at the drive rate.
sim::Cluster chaos_cluster(std::uint64_t seed) {
  std::vector<sim::ServiceConfig> svcs{
      {.name = "a", .unit_quota = 1000, .initial_instances = 2,
       .max_concurrency = 8, .demand_mean_ms = 10.0, .demand_sigma = 1.0},
      {.name = "b", .unit_quota = 1000, .initial_instances = 2,
       .max_concurrency = 8, .demand_mean_ms = 20.0, .demand_sigma = 2.0},
  };
  sim::CallNode root{.service = 0, .stages = {{sim::CallNode{.service = 1}}}};
  return sim::Cluster{svcs, {sim::Api{"chain", root}}, {.seed = seed}};
}

struct ChaosRig {
  sim::Cluster cluster;
  core::ConfigurationSolver solver;
  core::WorkloadAnalyzer analyzer{1, 2};
  core::ResourceController rc;
  core::GrafController graf;
  telemetry::MetricsRegistry registry;

  explicit ChaosRig(std::uint64_t seed, double slo_ms = 220.0)
      : cluster{chaos_cluster(seed)},
        solver{chaos_model(), {}},
        rc{chaos_model(),   solver,           analyzer,
           {800.0, 1500.0}, {2000.0, 2000.0}, {1000.0, 1000.0}},
        // Wide hysteresis band: the constant-rate drive must not trigger
        // mid-run re-solves that would race the test's explicit scale_to.
        graf{rc, {.slo_ms = slo_ms, .control_interval = 2.0,
                  .rate_window = 4.0, .change_threshold = 0.5}} {
    analyzer.set_fanout({{1.0, 1.0}});
    gnn::Dataset ref;
    gnn::Sample s;
    s.workload = {60.0, 60.0};
    s.quota = {1000.0, 1000.0};
    s.latency_ms = 100.0;
    ref.push_back(s);
    rc.set_training_reference(ref);
    cluster.set_metrics(&registry);
    graf.set_metrics(&registry);
  }

  double degraded_gauge() { return registry.gauge("core.degraded").value(); }
};

TEST(ChaosIntegration, SurvivesEveryFaultClassAndRecovers) {
  ChaosRig rig{31};
  sim::FaultInjector inj{rig.cluster};
  inj.set_metrics(&rig.registry);
  // One of everything, spread out so each recovery window is observable.
  inj.throttle_cpu(30.0, 10.0, 1, 0.5);
  inj.crash_instance(50.0, 0, 11, sim::CrashMode::kRequeue);
  inj.crash_instance(55.0, 1, 12, sim::CrashMode::kAbort);
  inj.degrade_creations(60.0, 15.0, /*fail=*/true, /*fail_after=*/2.0,
                        /*extra_delay=*/0.0);
  inj.blackout_telemetry(80.0, 10.0);
  inj.arm();
  // A scale-up lands mid-outage so the retry-with-backoff path runs too.
  rig.cluster.events().schedule_at(
      65.0, [&rig] { rig.cluster.service(0).scale_to(3); });

  rig.graf.attach(rig.cluster, 140.0);
  workload::OpenLoopConfig g;
  g.rate = workload::Schedule::constant(30.0);
  workload::OpenLoopGenerator gen{rig.cluster, g};
  gen.start(140.0);

  // Establish steady state: the loop has solved and is not degraded.
  rig.cluster.run_until(20.0);
  ASSERT_GT(rig.graf.solves(), 0u);
  ASSERT_FALSE(rig.graf.degraded());
  ASSERT_EQ(rig.degraded_gauge(), 0.0);

  // Throttle, crashes, creation outage: the loop must keep ticking without
  // a single plan failure (nothing in this band may throw).
  rig.cluster.run_until(78.0);
  EXPECT_EQ(rig.graf.plan_failures(), 0u);
  EXPECT_EQ(inj.fired(), 4u);
  EXPECT_EQ(rig.cluster.service(0).crashes(), 1u);
  EXPECT_EQ(rig.cluster.service(1).crashes(), 1u);
  EXPECT_GE(rig.cluster.service(0).creation_failures(), 2u);
  EXPECT_GE(rig.cluster.service(0).creation_retries(), 2u);

  // Telemetry blackout: the front-end qps signal vanishes. The controller
  // must hold its last plan and raise the degraded gauge, not act on zeros.
  rig.cluster.run_until(88.0);
  EXPECT_TRUE(rig.graf.degraded());
  EXPECT_EQ(rig.degraded_gauge(), 1.0);
  EXPECT_GE(rig.cluster.total_target_instances(), 2);  // fleet held

  // Blackout clears at t=90; the loop must recover within 5 control ticks.
  rig.cluster.run_until(100.0);
  EXPECT_FALSE(rig.graf.degraded());
  EXPECT_EQ(rig.degraded_gauge(), 0.0);
  EXPECT_EQ(rig.graf.plan_failures(), 0u);

  rig.cluster.run_until(140.0);
  // The run did real work and the overwhelming majority of it succeeded
  // (the abort-mode crash may fail a handful of in-flight requests).
  EXPECT_GT(rig.cluster.completed(), 3000u);
  EXPECT_LT(rig.cluster.failed(), rig.cluster.completed() / 20);
  // Every request is accounted for — nothing leaked through crash paths.
  EXPECT_EQ(rig.cluster.submitted(),
            rig.cluster.completed() + rig.cluster.failed() +
                rig.cluster.inflight());
}

TEST(ChaosIntegration, AnalyzerLossDegradesAndFanoutHeals) {
  // Degraded-mode entry without any injector: the analyzer never saw
  // fan-out, so the very first plan must fall back (hi-bound) instead of
  // throwing, and the gauge must say so.
  core::ConfigurationSolver solver{chaos_model(), {}};
  core::WorkloadAnalyzer analyzer{1, 2};  // ready() == false: no fanout yet
  core::ResourceController rc{chaos_model(), solver,           analyzer,
                              {800.0, 1500.0}, {2000.0, 2000.0},
                              {1000.0, 1000.0}};
  telemetry::MetricsRegistry registry;
  rc.set_metrics(&registry);
  const std::vector<Qps> api{40.0};
  const auto plan = rc.plan(api, 220.0);
  EXPECT_TRUE(plan.degraded);
  EXPECT_FALSE(plan.feasible);
  EXPECT_EQ(registry.gauge("core.degraded").value(), 1.0);
  EXPECT_EQ(registry.counter("faults.analyzer_not_ready").value(), 1.0);
  EXPECT_EQ(rc.degraded_plans(), 1u);

  // Fan-out arrives (tracer caught up): the next plan is clean again.
  analyzer.set_fanout({{1.0, 1.0}});
  gnn::Dataset ref;
  gnn::Sample s;
  s.workload = {60.0, 60.0};
  s.quota = {1000.0, 1000.0};
  s.latency_ms = 100.0;
  ref.push_back(s);
  rc.set_training_reference(ref);
  const auto healed = rc.plan(api, 220.0);
  EXPECT_FALSE(healed.degraded);
  EXPECT_EQ(registry.gauge("core.degraded").value(), 0.0);
}

// Determinism at the integration level: a faulted chaos run replays
// bit-identically (counters and tail) for the same seeds and schedule.
TEST(ChaosIntegration, FaultedControlLoopIsDeterministic) {
  auto run = [] {
    ChaosRig rig{41};
    sim::FaultInjector inj{rig.cluster};
    sim::FaultScheduleConfig cfg;
    cfg.seed = 5;
    cfg.until = 90.0;
    cfg.crash_per_min = 2.0;
    cfg.throttle_per_min = 1.0;
    cfg.creation_outage_per_min = 0.5;
    cfg.blackout_per_min = 0.5;
    inj.add(sim::FaultInjector::generate(cfg, rig.cluster.service_count()));
    inj.arm();
    rig.graf.attach(rig.cluster, 100.0);
    workload::OpenLoopConfig g;
    g.rate = workload::Schedule::constant(30.0);
    workload::OpenLoopGenerator gen{rig.cluster, g};
    gen.start(100.0);
    rig.cluster.run_until(100.0);
    return std::tuple{rig.cluster.completed(), rig.cluster.failed(),
                      rig.graf.solves(), inj.fired(),
                      rig.cluster.e2e_latency_all().percentile(99.0)};
  };
  const auto a = run();
  const auto b = run();
  EXPECT_EQ(std::get<0>(a), std::get<0>(b));
  EXPECT_EQ(std::get<1>(a), std::get<1>(b));
  EXPECT_EQ(std::get<2>(a), std::get<2>(b));
  EXPECT_EQ(std::get<3>(a), std::get<3>(b));
  EXPECT_DOUBLE_EQ(std::get<4>(a), std::get<4>(b));
}

}  // namespace
}  // namespace graf
