// LatencyModel training on a synthetic-but-realistic ground truth: latency
// that is monotone decreasing in quota and increasing in workload, like the
// simulator produces. Verifies learning, the over-estimation bias of the
// asymmetric loss, input-gradient signs, and persistence.
#include "gnn/latency_model.h"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "common/rng.h"

namespace graf::gnn {
namespace {

Dag chain2() {
  Dag d;
  d.add_node("a");
  d.add_node("b");
  d.add_edge(0, 1);
  return d;
}

MpnnConfig tiny_cfg(bool use_mpnn = true) {
  return {.node_features = 4, .embed_dim = 8, .mpnn_hidden = 8,
          .readout_hidden = 24, .message_steps = 2, .dropout_p = 0.05,
          .use_mpnn = use_mpnn};
}

/// Ground truth: additive per-service latency, each ~ demand/(quota) with a
/// congestion blow-up as workload approaches capacity.
double truth_ms(const std::vector<double>& w, const std::vector<double>& q) {
  double total = 0.0;
  const double demand[] = {20.0, 40.0};  // core-ms
  for (std::size_t i = 0; i < w.size(); ++i) {
    const double cores = q[i] / 1000.0;
    const double base = demand[i] / std::min(cores, 1.0);
    const double capacity = cores * 1000.0 / demand[i];  // qps the quota supports
    const double utilization = std::min(w[i] / capacity, 0.95);
    total += base / (1.0 - utilization);
  }
  return total;
}

Dataset synth_dataset(std::size_t n, std::uint64_t seed) {
  Rng rng{seed};
  Dataset out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    Sample s;
    const double w = rng.uniform(20.0, 100.0);
    s.workload = {w, w};
    s.quota = {rng.uniform(300.0, 2000.0), rng.uniform(300.0, 2000.0)};
    s.latency_ms = truth_ms(s.workload, s.quota) * rng.lognormal(0.0, 0.05);
    out.push_back(std::move(s));
  }
  return out;
}

TrainConfig fast_train(std::size_t iters = 1200) {
  return {.iterations = iters, .batch_size = 64, .lr = 3e-3,
          .theta_under = 0.3, .theta_over = 0.1, .eval_every = 100, .seed = 3};
}

struct TrainedModelFixture : ::testing::Test {
  // Train once for the whole suite; tests read from it.
  static LatencyModel& model() {
    static LatencyModel m = [] {
      LatencyModel lm{chain2(), tiny_cfg(), 7};
      Dataset train = synth_dataset(1500, 1);
      Dataset val = synth_dataset(200, 2);
      lm.fit(train, val, fast_train());
      return lm;
    }();
    return m;
  }
};

TEST(LatencyModelBasic, FitRejectsEmptyTrainSet) {
  LatencyModel lm{chain2(), tiny_cfg(), 1};
  EXPECT_THROW(lm.fit({}, {}, fast_train(10)), std::invalid_argument);
}

TEST(LatencyModelBasic, PredictValidatesDimensions) {
  LatencyModel lm{chain2(), tiny_cfg(), 1};
  lm.fit(synth_dataset(64, 1), {}, fast_train(5));
  std::vector<double> bad{1.0};
  std::vector<double> good{1.0, 2.0};
  EXPECT_THROW(lm.predict(bad, good), std::invalid_argument);
}

TEST(LatencyModelBasic, HistoryHasEvalPoints) {
  LatencyModel lm{chain2(), tiny_cfg(), 1};
  auto hist = lm.fit(synth_dataset(256, 1), synth_dataset(64, 2), fast_train(300));
  EXPECT_EQ(hist.iteration.size(), 3u);
  EXPECT_EQ(hist.train_loss.size(), hist.val_loss.size());
}

TEST_F(TrainedModelFixture, LossDecreasesDuringTraining) {
  LatencyModel lm{chain2(), tiny_cfg(), 11};
  Dataset train = synth_dataset(1000, 5);
  Dataset val = synth_dataset(200, 6);
  auto hist = lm.fit(train, val, fast_train(800));
  ASSERT_GE(hist.val_loss.size(), 2u);
  EXPECT_LT(hist.best_val_loss, hist.val_loss.front());
}

TEST_F(TrainedModelFixture, ReasonableTestAccuracy) {
  auto& m = model();
  Dataset test = synth_dataset(300, 9);
  const auto rep = m.evaluate_accuracy(test);
  EXPECT_EQ(rep.count, 300u);
  // The paper itself reports 20-30% MAPE; the clean synthetic function
  // should be learned at least that well.
  EXPECT_LT(rep.mean_abs_pct_error, 30.0);
}

TEST(LatencyModelBias, AsymmetricLossShiftsPredictionsUp) {
  // On noisy labels the asymmetric loss (theta_under > theta_over) must
  // place predictions systematically higher than a symmetric Hüber fit —
  // the mechanism behind the paper's ~+5% over-estimate (Table 2).
  Rng rng{40};
  Dataset noisy;
  for (std::size_t i = 0; i < 1200; ++i) {
    Sample s;
    const double w = rng.uniform(20.0, 100.0);
    s.workload = {w, w};
    s.quota = {rng.uniform(300.0, 2000.0), rng.uniform(300.0, 2000.0)};
    s.latency_ms = truth_ms(s.workload, s.quota) * rng.lognormal(0.0, 0.35);
    noisy.push_back(std::move(s));
  }
  Dataset test{noisy.begin(), noisy.begin() + 200};
  Dataset train{noisy.begin() + 200, noisy.end()};

  // 1500 iterations: enough for the symmetric baseline to converge past its
  // transient over-shoot, so the comparison measures the loss asymmetry and
  // not residual optimization noise.
  LatencyModel asym{chain2(), tiny_cfg(), 51};
  TrainConfig cfg_a = fast_train(1500);
  asym.fit(train, {}, cfg_a);

  LatencyModel sym{chain2(), tiny_cfg(), 51};
  TrainConfig cfg_s = fast_train(1500);
  cfg_s.theta_under = 0.2;
  cfg_s.theta_over = 0.2;
  sym.fit(train, {}, cfg_s);

  const double bias_asym = asym.evaluate_accuracy(test).mean_pct_error;
  const double bias_sym = sym.evaluate_accuracy(test).mean_pct_error;
  EXPECT_GT(bias_asym, bias_sym);
}

TEST_F(TrainedModelFixture, PredictionDecreasesWithMoreCpu) {
  auto& m = model();
  std::vector<double> w{60.0, 60.0};
  std::vector<double> q_small{400.0, 400.0};
  std::vector<double> q_big{1600.0, 1600.0};
  EXPECT_GT(m.predict(w, q_small), m.predict(w, q_big));
}

TEST_F(TrainedModelFixture, PredictionIncreasesWithWorkload) {
  auto& m = model();
  std::vector<double> q{800.0, 800.0};
  std::vector<double> w_lo{30.0, 30.0};
  std::vector<double> w_hi{95.0, 95.0};
  EXPECT_LT(m.predict(w_lo, q), m.predict(w_hi, q));
}

TEST_F(TrainedModelFixture, PredictVarMatchesPredict) {
  auto& m = model();
  std::vector<double> w{50.0, 70.0};
  nn::Tensor q0{{700.0, 900.0}};
  nn::Tape tape;
  nn::Var qv = tape.leaf(q0, false);
  nn::Var out = m.predict_var(tape, w, qv);
  std::vector<double> q{700.0, 900.0};
  EXPECT_NEAR(tape.value(out).item(), m.predict(w, q), 1e-9);
}

TEST_F(TrainedModelFixture, QuotaGradientIsNegativeOnAverage) {
  // d latency / d quota should be negative (more CPU -> less latency) at
  // interior points of the trained region.
  auto& m = model();
  std::vector<double> w{70.0, 70.0};
  nn::Tape tape;
  nn::Var qv = tape.leaf(nn::Tensor{{600.0, 600.0}});
  nn::Var out = m.predict_var(tape, w, qv);
  tape.backward(out);
  const nn::Tensor& g = tape.grad(qv);
  EXPECT_LT(g(0, 0) + g(0, 1), 0.0);
}

TEST_F(TrainedModelFixture, SaveLoadRoundTrip) {
  auto& m = model();
  std::stringstream ss;
  m.save(ss);
  LatencyModel copy{chain2(), tiny_cfg(), 999};  // different init
  copy.load(ss);
  std::vector<double> w{55.0, 45.0};
  std::vector<double> q{1000.0, 500.0};
  EXPECT_DOUBLE_EQ(copy.predict(w, q), m.predict(w, q));
}

TEST_F(TrainedModelFixture, AccuracyRegionsPartitionTestSet) {
  auto& m = model();
  Dataset test = synth_dataset(200, 12);
  const auto lo = m.evaluate_accuracy(test, 0.0, 150.0);
  const auto hi = m.evaluate_accuracy(test, 150.0, 1e18);
  EXPECT_EQ(lo.count + hi.count, 200u);
}

TEST(LatencyModelAblation, NoMpnnStillTrains) {
  LatencyModel lm{chain2(), tiny_cfg(false), 21};
  Dataset train = synth_dataset(500, 31);
  Dataset val = synth_dataset(100, 32);
  auto hist = lm.fit(train, val, fast_train(400));
  EXPECT_LT(hist.best_val_loss, hist.val_loss.front() * 1.5);
}

}  // namespace
}  // namespace graf::gnn
