// Model store + online serving subsystem (src/serve): registry versioning
// with promote/rollback, hot-swap through the ServingHandle and into the
// ResourceController, and the OnlineTrainer's drift -> fine-tune ->
// validate -> promote loop, including automatic rollback when a promoted
// model regresses on live traffic.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <memory>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "core/configuration_solver.h"
#include "core/resource_controller.h"
#include "core/workload_analyzer.h"
#include "gnn/latency_model.h"
#include "serve/model_registry.h"
#include "serve/online_trainer.h"
#include "serve/serving_handle.h"

namespace graf::serve {
namespace {

gnn::Dag chain2() {
  gnn::Dag d;
  d.add_node("front");
  d.add_node("back");
  d.add_edge(0, 1);
  return d;
}

gnn::MpnnConfig tiny_cfg() {
  return {.node_features = 4, .embed_dim = 8, .mpnn_hidden = 8,
          .readout_hidden = 24, .message_steps = 2, .dropout_p = 0.05,
          .use_mpnn = true};
}

/// Ground truth parameterized by per-service demand (core-ms per request):
/// shifting the demand vector mid-run is the "workload regime drift" the
/// online trainer must recover from.
double truth_ms(const std::vector<double>& w, const std::vector<double>& q,
                const std::vector<double>& demand) {
  double total = 0.0;
  for (std::size_t i = 0; i < w.size(); ++i) {
    const double cores = q[i] / 1000.0;
    const double base = demand[i] / std::min(cores, 1.0);
    const double capacity = cores * 1000.0 / demand[i];
    const double utilization = std::min(w[i] / capacity, 0.95);
    total += base / (1.0 - utilization);
  }
  return total;
}

gnn::Dataset regime_dataset(const std::vector<double>& demand, std::size_t n,
                            std::uint64_t seed) {
  Rng rng{seed};
  gnn::Dataset out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    gnn::Sample s;
    const double w = rng.uniform(20.0, 100.0);
    s.workload = {w, w};
    s.quota = {rng.uniform(300.0, 2000.0), rng.uniform(300.0, 2000.0)};
    s.latency_ms = truth_ms(s.workload, s.quota, demand) * rng.lognormal(0.0, 0.03);
    out.push_back(std::move(s));
  }
  return out;
}

const std::vector<double> kRegimeA{20.0, 40.0};
const std::vector<double> kRegimeB{45.0, 90.0};   // drifted: ~2.2x the demand
const std::vector<double> kRegimeC{90.0, 180.0};  // second drift, harsher

/// Model trained on regime A, published + promoted as v1. The expensive
/// initial training runs once for the whole suite; each test publishes a
/// fresh clone into its own registry.
struct ServeFixture : ::testing::Test {
  static gnn::LatencyModel& trained_initial() {
    static gnn::LatencyModel m = [] {
      gnn::LatencyModel lm{chain2(), tiny_cfg(), 7};
      gnn::TrainConfig tcfg{.iterations = 900, .batch_size = 64, .lr = 3e-3,
                            .eval_every = 100, .seed = 3};
      lm.fit(regime_dataset(kRegimeA, 1200, 1), regime_dataset(kRegimeA, 200, 2),
             tcfg);
      return lm;
    }();
    return m;
  }

  ServeFixture() : key{.application = "drift-app", .slo_ms = 200.0} {
    gnn::LatencyModel initial = trained_initial().clone();
    baseline_err =
        initial.evaluate_accuracy(regime_dataset(kRegimeA, 200, 2)).mean_abs_pct_error;

    CheckpointMeta meta{.train_samples = 1200,
                        .val_error_pct = baseline_err, .created_sim_time = 0.0};
    v1 = registry.publish(key, initial, meta);
    registry.promote(key, v1);
    registry.attach_handle(key, &handle);
  }

  OnlineTrainerConfig trainer_cfg() const {
    OnlineTrainerConfig cfg;
    cfg.window_capacity = 360;
    cfg.min_samples = 240;
    cfg.cooldown = 60;
    cfg.ewma_alpha = 0.1;
    cfg.drift_factor = 2.5;
    cfg.drift_floor_pct = 15.0;
    cfg.fine_tune = {.iterations = 700, .batch_size = 64, .lr = 2e-3,
                     .eval_every = 100, .seed = 5};
    return cfg;
  }

  ModelKey key;
  ModelRegistry registry;
  ServingHandle handle;
  std::uint64_t v1 = 0;
  double baseline_err = 0.0;
};

// --- Registry + handle mechanics -------------------------------------------

TEST_F(ServeFixture, PromoteAndRollbackTrackVersionsAndSwapHandle) {
  EXPECT_EQ(registry.active_version(key), v1);
  EXPECT_FALSE(handle.empty());
  auto first = handle.acquire();

  gnn::LatencyModel second = first->clone();
  const std::uint64_t v2 =
      registry.publish(key, second, {.val_error_pct = 4.0, .created_sim_time = 10.0});
  EXPECT_EQ(v2, v1 + 1);
  EXPECT_EQ(registry.active_version(key), v1) << "publish must not change serving";

  EXPECT_TRUE(registry.promote(key, v2));
  EXPECT_EQ(registry.active_version(key), v2);
  EXPECT_NE(handle.acquire().get(), first.get()) << "promotion swaps the handle";
  EXPECT_EQ(registry.active_meta(key).val_error_pct, 4.0);

  EXPECT_TRUE(registry.rollback(key));
  EXPECT_EQ(registry.active_version(key), v1);
  EXPECT_EQ(handle.acquire().get(), first.get()) << "rollback restores v1";
  EXPECT_FALSE(registry.rollback(key)) << "no further history to unwind";

  EXPECT_FALSE(registry.promote(key, 99)) << "unknown version";
  EXPECT_EQ(registry.versions(key).size(), 2u);
}

TEST_F(ServeFixture, RegistryPersistsCheckpointsInStoreDir) {
  const std::string dir = ::testing::TempDir();
  ModelRegistry persistent{dir};
  auto model = handle.acquire();
  const std::uint64_t v =
      persistent.publish(key, *model, {.val_error_pct = 5.0, .created_sim_time = 3.0});
  const std::string path = persistent.checkpoint_path(key, v);
  ASSERT_FALSE(path.empty());

  ModelRegistry fresh;
  const std::uint64_t restored = fresh.restore(key, path);
  fresh.promote(key, restored);
  auto reloaded = fresh.active(key);
  ASSERT_NE(reloaded, nullptr);
  std::vector<double> w{50.0, 50.0};
  std::vector<double> q{900.0, 900.0};
  EXPECT_DOUBLE_EQ(model->predict(w, q), reloaded->predict(w, q));
  EXPECT_EQ(fresh.active_meta(key).application, key.application);
  std::remove(path.c_str());
}

TEST_F(ServeFixture, ResourceControllerFollowsHotSwappedModel) {
  auto model = handle.acquire();
  core::ConfigurationSolver solver{*model, {.max_iterations = 60}};
  core::WorkloadAnalyzer analyzer{1, 2};
  analyzer.set_fanout({{1.0, 1.0}});
  core::ResourceController rc{*model, solver, analyzer,
                              {300.0, 300.0}, {2000.0, 2000.0}, {500.0, 500.0}};
  rc.set_serving_handle(&handle);
  EXPECT_EQ(&rc.active_model(), model.get());

  // Swap in a model fine-tuned for the drifted regime; the very next
  // allocation decision must solve through it without reconstruction.
  gnn::LatencyModel drifted = model->clone();
  gnn::TrainConfig tcfg{.iterations = 400, .batch_size = 64, .lr = 2e-3,
                        .eval_every = 100, .seed = 11};
  drifted.fit(regime_dataset(kRegimeB, 600, 31), {}, tcfg);
  const std::uint64_t v2 =
      registry.publish(key, drifted, {.val_error_pct = 6.0, .created_sim_time = 50.0});
  registry.promote(key, v2);

  EXPECT_NE(&rc.active_model(), model.get());
  std::vector<Qps> api{60.0};
  core::AllocationPlan plan = rc.plan(api, 200.0);
  EXPECT_EQ(plan.quota.size(), 2u);
  // The drifted regime needs visibly more CPU for the same SLO than the
  // regime-A model would have allocated.
  core::AllocationPlan old_plan = [&] {
    core::ConfigurationSolver s2{*model, {.max_iterations = 60}};
    core::ResourceController rc2{*model, s2, analyzer,
                                 {300.0, 300.0}, {2000.0, 2000.0}, {500.0, 500.0}};
    return rc2.plan(api, 200.0);
  }();
  EXPECT_GT(plan.quota[0] + plan.quota[1], old_plan.quota[0] + old_plan.quota[1]);
}

// --- Drift -> fine-tune -> promote -----------------------------------------

TEST_F(ServeFixture, DriftTriggersFineTuneAndRecoversError) {
  OnlineTrainer trainer{registry, handle, key, trainer_cfg()};
  auto initial_model = handle.acquire();
  const double threshold = trainer.drift_threshold_pct();

  // The workload mix shifts: stream regime-B samples. The promoted model's
  // live error climbs past the drift threshold, a fine-tune fires, and the
  // validated candidate is hot-swapped in.
  gnn::Dataset live = regime_dataset(kRegimeB, 420, 40);
  bool swapped = false;
  double now = 100.0;
  for (const gnn::Sample& s : live) {
    swapped |= trainer.ingest(s, now);
    now += 1.0;
  }
  const OnlineTrainerStats& st = trainer.stats();
  EXPECT_GE(st.drift_events, 1u);
  EXPECT_GE(st.fine_tunes, 1u);
  EXPECT_GE(st.promotions, 1u);
  EXPECT_TRUE(swapped);
  EXPECT_EQ(st.rollbacks, 0u);
  EXPECT_GT(registry.active_version(key), v1);
  EXPECT_NE(handle.acquire().get(), initial_model.get());

  // Keep streaming the new regime: the promoted fine-tuned model's live
  // error must now sit below the (old) drift threshold.
  gnn::Dataset cont = regime_dataset(kRegimeB, 120, 41);
  for (const gnn::Sample& s : cont) trainer.ingest(s, now += 1.0);
  EXPECT_LT(trainer.stats().error_ewma_pct, threshold);
  EXPECT_LT(trainer.stats().error_ewma_pct, 30.0)
      << "fine-tuned model should predict the drifted regime well";

  // Allocation never paused: the handle always held a model.
  EXPECT_FALSE(handle.empty());
  EXPECT_GE(handle.swap_count(), 2u);  // initial attach + >=1 promotion
}

TEST_F(ServeFixture, RegressingCandidateIsRejectedAtHoldoutGate) {
  OnlineTrainerConfig cfg = trainer_cfg();
  // Cripple the fine-tune budget: two giant steps destroy the clone, so the
  // candidate must lose the holdout comparison and never reach serving.
  cfg.fine_tune = {.iterations = 2, .batch_size = 32, .lr = 5.0,
                   .eval_every = 2, .seed = 5};
  OnlineTrainer trainer{registry, handle, key, cfg};
  auto initial_model = handle.acquire();

  gnn::Dataset live = regime_dataset(kRegimeB, 360, 50);
  double now = 100.0;
  for (const gnn::Sample& s : live) trainer.ingest(s, now += 1.0);

  const OnlineTrainerStats& st = trainer.stats();
  EXPECT_GE(st.fine_tunes, 1u);
  EXPECT_GE(st.rejects, 1u);
  EXPECT_EQ(st.promotions, 0u);
  EXPECT_EQ(registry.active_version(key), v1) << "serving model unchanged";
  EXPECT_EQ(handle.acquire().get(), initial_model.get());
}

TEST_F(ServeFixture, WatchdogRollsBackPromotionThatRegressesLive) {
  OnlineTrainerConfig cfg = trainer_cfg();
  // Long watch window: the second drift must land while the freshly
  // promoted model is still under observation.
  cfg.watch_samples = 600;
  cfg.regress_factor = 1.5;
  OnlineTrainer trainer{registry, handle, key, cfg};

  // Drift to regime B and let a good candidate promote.
  gnn::Dataset live = regime_dataset(kRegimeB, 420, 60);
  double now = 100.0;
  for (const gnn::Sample& s : live) trainer.ingest(s, now += 1.0);
  ASSERT_GE(trainer.stats().promotions, 1u);
  const std::uint64_t promoted = registry.active_version(key);
  ASSERT_GT(promoted, v1);

  // Immediately drift again, harder, inside the watch window: the freshly
  // promoted model regresses on live traffic and is unwound automatically.
  gnn::Dataset harsher = regime_dataset(kRegimeC, 60, 61);
  bool rolled_back = false;
  for (const gnn::Sample& s : harsher) {
    rolled_back |= trainer.ingest(s, now += 1.0);
    if (trainer.stats().rollbacks > 0) break;
  }
  EXPECT_TRUE(rolled_back);
  EXPECT_GE(trainer.stats().rollbacks, 1u);
  EXPECT_LT(registry.active_version(key), promoted)
      << "rollback restored the previous version";
}

TEST_F(ServeFixture, TrainerRequiresPromotedModel) {
  ModelRegistry empty;
  ServingHandle h;
  EXPECT_THROW(
      (OnlineTrainer{empty, h, {.application = "none", .slo_ms = 1.0}, {}}),
      std::invalid_argument);
}

// --- Multi-handle attach (fleet regression) ---------------------------------

// Regression: Entry held a single ServingHandle*, so a second attach for the
// same key silently dropped the first tenant's handle — it never swapped on
// promote again, serving a stale model forever with a never-bumped plan-cache
// generation. Every attached handle must track promotions.
TEST_F(ServeFixture, PromoteSwapsEveryAttachedHandle) {
  ServingHandle second;
  registry.attach_handle(key, &second);
  EXPECT_EQ(second.acquire().get(), handle.acquire().get())
      << "attach syncs the new handle to the active model";

  gnn::LatencyModel next = handle.acquire()->clone();
  const std::uint64_t v2 = registry.publish(key, next, {});
  ASSERT_TRUE(registry.promote(key, v2));
  EXPECT_EQ(handle.acquire().get(), registry.active(key).get());
  EXPECT_EQ(second.acquire().get(), registry.active(key).get())
      << "both tenants' handles must follow the promotion";

  // Detached handles stop following (fleet tenants detach in their dtor).
  registry.detach_handle(key, &second);
  const auto frozen = second.acquire();
  const std::uint64_t v3 = registry.publish(key, next, {});
  ASSERT_TRUE(registry.promote(key, v3));
  EXPECT_EQ(second.acquire().get(), frozen.get());
  EXPECT_EQ(handle.acquire().get(), registry.active(key).get());
}

// The end-to-end consequence of the bug above: two ResourceControllers on
// two handles sharing one registry key. After a promote, *both* must solve
// through the new model and invalidate their plan caches (the audit found
// no stale-generation window inside refresh_model() itself — the window was
// the dropped handle).
TEST_F(ServeFixture, TwoControllersSharingKeyBothFollowPromotion) {
  auto make_stack = [](ServingHandle& h, gnn::LatencyModel& m) {
    struct Stack {
      core::ConfigurationSolver solver;
      core::WorkloadAnalyzer analyzer;
      core::ResourceController rc;
      Stack(ServingHandle& h, gnn::LatencyModel& m)
          : solver{m, {.max_iterations = 400}},
            analyzer{1, 2},
            rc{m, solver, analyzer, {200.0, 200.0}, {2000.0, 2000.0},
               {500.0, 500.0}} {
        analyzer.set_fanout({{1.0, 1.0}});
        rc.set_serving_handle(&h);
      }
    };
    return std::make_unique<Stack>(h, m);
  };

  ServingHandle second;
  registry.attach_handle(key, &second);
  auto model_a = handle.acquire();
  auto stack_a = make_stack(handle, *model_a);
  auto stack_b = make_stack(second, *model_a);

  // A modest workload + loose SLO keeps the short-budget solve feasible
  // inside the 2000mc bounds — only feasible, non-degraded plans are
  // cacheable, and the cache is the tell below.
  const std::vector<Qps> api{30.0};
  const double slo = 500.0;
  ASSERT_TRUE(stack_a->rc.plan(api, slo).feasible);
  ASSERT_TRUE(stack_b->rc.plan(api, slo).feasible);
  (void)stack_a->rc.plan(api, slo);  // cache hit
  (void)stack_b->rc.plan(api, slo);
  EXPECT_EQ(stack_a->rc.plan_cache_hits(), 1u);
  EXPECT_EQ(stack_b->rc.plan_cache_hits(), 1u);

  gnn::LatencyModel next = model_a->clone();
  const std::uint64_t v2 = registry.publish(key, next, {});
  ASSERT_TRUE(registry.promote(key, v2));

  // Both controllers pick up the swap on their next plan: same workload is
  // a cache *miss* (generation bumped), and both serve the new model.
  (void)stack_a->rc.plan(api, slo);
  (void)stack_b->rc.plan(api, slo);
  EXPECT_EQ(stack_a->rc.plan_cache_hits(), 1u);
  EXPECT_EQ(stack_b->rc.plan_cache_hits(), 1u);
  EXPECT_EQ(&stack_a->rc.active_model(), registry.active(key).get());
  EXPECT_EQ(&stack_b->rc.active_model(), registry.active(key).get());
}

// The mirror image of the promotion test: a rollback() is also a serving
// swap, and every attached controller must notice. Regression guard for the
// multi-attach path — a rollback that only swapped the first handle would
// leave the second tenant solving through the withdrawn model with a warm
// (now wrong) plan cache.
TEST_F(ServeFixture, RollbackBumpsGenerationForEveryAttachedController) {
  auto make_stack = [](ServingHandle& h, gnn::LatencyModel& m) {
    struct Stack {
      core::ConfigurationSolver solver;
      core::WorkloadAnalyzer analyzer;
      core::ResourceController rc;
      Stack(ServingHandle& h, gnn::LatencyModel& m)
          : solver{m, {.max_iterations = 400}},
            analyzer{1, 2},
            rc{m, solver, analyzer, {200.0, 200.0}, {2000.0, 2000.0},
               {500.0, 500.0}} {
        analyzer.set_fanout({{1.0, 1.0}});
        rc.set_serving_handle(&h);
      }
    };
    return std::make_unique<Stack>(h, m);
  };

  ServingHandle second;
  registry.attach_handle(key, &second);
  auto model_v1 = handle.acquire();
  auto stack_a = make_stack(handle, *model_v1);
  auto stack_b = make_stack(second, *model_v1);

  // Promote v2 and plan through it: both controllers pin v2 and warm their
  // caches (the second plan on each is a hit).
  gnn::LatencyModel next = model_v1->clone();
  const std::uint64_t v2 = registry.publish(key, next, {});
  ASSERT_TRUE(registry.promote(key, v2));
  const std::vector<Qps> api{30.0};
  const double slo = 500.0;
  ASSERT_TRUE(stack_a->rc.plan(api, slo).feasible);
  ASSERT_TRUE(stack_b->rc.plan(api, slo).feasible);
  (void)stack_a->rc.plan(api, slo);
  (void)stack_b->rc.plan(api, slo);
  ASSERT_EQ(stack_a->rc.plan_cache_hits(), 1u);
  ASSERT_EQ(stack_b->rc.plan_cache_hits(), 1u);
  const std::uint64_t gen_a = stack_a->rc.model_generation();
  const std::uint64_t gen_b = stack_b->rc.model_generation();

  // Unwind to v1. Both controllers must re-resolve: same workload is a
  // cache *miss* (generation bumped on both), and both serve v1 again.
  ASSERT_TRUE(registry.rollback(key));
  ASSERT_EQ(registry.active_version(key), v1);
  (void)stack_a->rc.plan(api, slo);
  (void)stack_b->rc.plan(api, slo);
  EXPECT_EQ(stack_a->rc.plan_cache_hits(), 1u)
      << "rollback must invalidate the first controller's plan cache";
  EXPECT_EQ(stack_b->rc.plan_cache_hits(), 1u)
      << "rollback must invalidate the second controller's plan cache too";
  EXPECT_GT(stack_a->rc.model_generation(), gen_a);
  EXPECT_GT(stack_b->rc.model_generation(), gen_b);
  EXPECT_EQ(&stack_a->rc.active_model(), registry.active(key).get());
  EXPECT_EQ(&stack_b->rc.active_model(), registry.active(key).get());
  EXPECT_EQ(registry.active(key).get(), model_v1.get());
}

// --- Concurrent publish/promote (fleet makes this routine) ------------------

TEST_F(ServeFixture, ConcurrentPublishPromoteAgainstOneHandle) {
  // Two trainer-like threads race publish+promote for one key while the
  // handle is attached; a third continuously acquires through the handle
  // (the control loop). Correctness here is "no torn state": every acquire
  // sees a complete model, and the final active version is one of the
  // published ones. TSan/ASan legs make this a real race detector.
  constexpr int kPerThread = 6;
  std::atomic<bool> stop{false};
  std::atomic<int> acquires{0};
  std::thread reader{[&] {
    while (!stop.load(std::memory_order_relaxed)) {
      auto m = handle.acquire();
      if (m != nullptr) acquires.fetch_add(1, std::memory_order_relaxed);
      std::this_thread::yield();
    }
  }};
  auto publisher = [&](std::uint64_t seed) {
    gnn::LatencyModel mine = trained_initial().clone();
    for (int i = 0; i < kPerThread; ++i) {
      const std::uint64_t v =
          registry.publish(key, mine, {.train_samples = seed});
      registry.promote(key, v);
    }
  };
  std::thread t1{publisher, 1};
  std::thread t2{publisher, 2};
  t1.join();
  t2.join();
  stop.store(true);
  reader.join();

  EXPECT_GT(acquires.load(), 0);
  const auto versions = registry.versions(key);
  EXPECT_EQ(versions.size(), 1u + 2u * kPerThread);  // v1 + both threads
  const std::uint64_t active = registry.active_version(key);
  EXPECT_GE(active, 1u);
  EXPECT_LE(active, versions.size());
  EXPECT_EQ(handle.acquire().get(), registry.active(key).get())
      << "handle and registry must agree after the dust settles";
}

}  // namespace
}  // namespace graf::serve
