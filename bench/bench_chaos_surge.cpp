// Surge under faults (ISSUE 4 acceptance / a chaos-hardened Fig. 21-22):
// the Locust population doubles mid-run while a deterministic fault
// schedule crashes instances, degrades Deployment creations, throttles CPU,
// and blacks out telemetry. GRAF (whole-chain proactive allocation with the
// degraded-mode fallbacks) vs the tuned Kubernetes HPA under the *identical*
// schedule — the claim is that proactive allocation plus graceful
// degradation keeps the SLO-violation rate below the reactive baseline even
// when the substrate misbehaves. Key rates land in BENCH_perf.json
// (merged, so bench_perf_micro's rows are preserved).
#include <algorithm>
#include <iostream>
#include <string>
#include <vector>

#include "autoscalers/k8s_hpa.h"
#include "bench_common.h"
#include "common/table.h"
#include "sim/fault_injector.h"
#include "workload/closed_loop.h"

namespace {

constexpr double kSurgeAt = 150.0;
constexpr double kEnd = 500.0;

graf::sim::FaultScheduleConfig fault_schedule() {
  graf::sim::FaultScheduleConfig cfg;
  cfg.seed = 211;
  cfg.from = 100.0;  // steady state first, then the weather turns
  cfg.until = 400.0;
  cfg.crash_per_min = 1.5;
  cfg.crash_abort_fraction = 0.5;
  cfg.creation_outage_per_min = 0.4;
  cfg.creation_outage_duration = 30.0;
  cfg.creation_fail_after = 5.0;
  cfg.throttle_per_min = 1.0;
  cfg.throttle_duration = 45.0;
  cfg.throttle_factor_lo = 0.4;
  cfg.throttle_factor_hi = 0.7;
  cfg.blackout_per_min = 0.4;
  cfg.blackout_duration = 20.0;
  return cfg;
}

struct ArmResult {
  std::string name;
  std::size_t measured = 0;    // completions after the surge
  std::size_t violations = 0;  // e2e > SLO
  std::size_t failures = 0;    // timeouts / aborted in-flight work
  int instances_at_end = 0;
  std::size_t faults_fired = 0;

  double violation_pct() const {
    const double total = static_cast<double>(measured + failures);
    return total == 0.0
               ? 0.0
               : 100.0 * static_cast<double>(violations + failures) / total;
  }
};

ArmResult run(const std::string& name, graf::sim::Cluster& cluster,
              double users_before, double users_after, double slo) {
  using namespace graf;
  sim::FaultInjector injector{cluster};
  injector.add(sim::FaultInjector::generate(fault_schedule(),
                                            cluster.service_count()));
  injector.arm();

  ArmResult out;
  out.name = name;
  workload::ClosedLoopConfig g;
  g.users = workload::Schedule::step(users_before, users_after, kSurgeAt);
  g.api_weights = apps::online_boutique().api_weights;
  g.seed = 85;
  g.on_complete = [&](const trace::RequestTrace& t) {
    if (cluster.now() < kSurgeAt) return;  // measure surge + fault window
    if (!t.ok) {
      ++out.failures;
    } else {
      ++out.measured;
      if (t.e2e_ms() > slo) ++out.violations;
    }
  };
  workload::ClosedLoopGenerator gen{cluster, g};
  gen.start(kEnd);
  cluster.run_until(kEnd);
  out.instances_at_end = cluster.total_target_instances();
  out.faults_fired = injector.fired();
  return out;
}

}  // namespace

int main() {
  using namespace graf;
  auto stack = bench::build_or_load_stack(bench::online_boutique_stack_config());
  const double slo = stack.default_slo_ms;
  const double thr = bench::tune_hpa_threshold(stack.topo, 1250.0, slo, 81);
  const double users_before = 625.0;
  const double users_after = 1250.0;

  std::vector<ArmResult> arms;
  {
    sim::Cluster cluster = apps::make_cluster(stack.topo, {.seed = 83});
    auto rt = bench::make_graf_runtime(stack, slo);
    rt.autoscaler->attach(cluster, kEnd);
    arms.push_back(run("GRAF", cluster, users_before, users_after, slo));
  }
  {
    sim::Cluster cluster = apps::make_cluster(stack.topo, {.seed = 83});
    autoscalers::K8sHpa hpa{{.target_utilization = thr}};
    hpa.attach(cluster, kEnd);
    arms.push_back(
        run("K8s Autoscaler", cluster, users_before, users_after, slo));
  }

  Table table{"Surge under faults: users " + Table::num(users_before, 0) +
              " -> " + Table::num(users_after, 0) +
              " at t=150s, chaos schedule seed 211"};
  table.header({"arm", "SLO violation (%)", "violations", "failures",
                "completions", "instances at end", "faults fired"});
  for (const auto& a : arms) {
    table.row({a.name, Table::num(a.violation_pct(), 2),
               Table::integer(static_cast<long long>(a.violations)),
               Table::integer(static_cast<long long>(a.failures)),
               Table::integer(static_cast<long long>(a.measured)),
               Table::integer(a.instances_at_end),
               Table::integer(static_cast<long long>(a.faults_fired))});
  }
  table.print(std::cout);

  const ArmResult& graf_arm = arms[0];
  const ArmResult& hpa_arm = arms[1];
  std::cout << "Shape check: identical fault schedule on both arms; GRAF's "
               "violation rate\nshould stay below the reactive HPA's.\n";

  bench::results().record("chaos_surge.graf.slo_violation_pct",
                          graf_arm.violation_pct(), "%");
  bench::results().record("chaos_surge.k8s_hpa.slo_violation_pct",
                          hpa_arm.violation_pct(), "%");
  bench::results().record("chaos_surge.graf.failures",
                          static_cast<double>(graf_arm.failures), "requests");
  bench::results().record("chaos_surge.k8s_hpa.failures",
                          static_cast<double>(hpa_arm.failures), "requests");
  bench::results().record("chaos_surge.faults_fired",
                          static_cast<double>(graf_arm.faults_fired), "events");
  // Preserve the micro-bench rows already tracked in BENCH_perf.json.
  bench::results().merge_json_file(bench::bench_out_path("BENCH_perf.json"));
  bench::write_bench_results("BENCH_perf.json");
  return graf_arm.violation_pct() <= hpa_arm.violation_pct() ? 0 : 1;
}
