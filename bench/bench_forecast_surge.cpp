// Forecast-mode evaluation (DESIGN.md §3.11): the same proactive GRAF
// control loop run three ways — forecast+plan (the ForecastGate pre-warms
// capacity by planning for max(observed, predicted-at-horizon)), plan-alone
// (PR-1..6 behavior), and the tuned Kubernetes HPA — under (a) a doubling
// Locust surge and (b) an Azure-functions style trace schedule.
//
// The claim under test: pre-warming against the forecast's upper band buys
// a strictly lower SLO-violation rate on the surge than planning for the
// observed load, at a bounded over-provisioning cost. Headline rates land
// in BENCH_perf.json under forecast_surge.* (merged, so bench_perf_micro's
// rows are preserved), and the exit code enforces the surge claim.
#include <algorithm>
#include <iostream>
#include <string>
#include <vector>

#include "autoscalers/k8s_hpa.h"
#include "bench_common.h"
#include "common/table.h"
#include "forecast/gate.h"
#include "workload/azure_trace.h"
#include "workload/closed_loop.h"

namespace {

constexpr double kSurgeAt = 150.0;
constexpr double kSurgeEnd = 500.0;
constexpr double kAzureEnd = 900.0;

struct ArmResult {
  std::string name;
  std::size_t measured = 0;    // completions inside the measurement window
  std::size_t violations = 0;  // e2e > SLO
  std::size_t failures = 0;    // timeouts / aborted in-flight work
  double core_seconds = 0.0;   // integral of allocated quota over the window
  double overprov_core_s = 0.0;  // filled in against the cheapest arm
  std::vector<double> quota_samples;  // total millicores, every 5 s

  double violation_pct() const {
    const double total = static_cast<double>(measured + failures);
    return total == 0.0
               ? 0.0
               : 100.0 * static_cast<double>(violations + failures) / total;
  }
};

/// Drive `cluster` under the closed-loop `users` schedule until `end`,
/// counting SLO conformance from `measure_from` on and integrating the
/// allocated quota (5 s sampling, the control-tick cadence).
ArmResult run(const std::string& name, graf::sim::Cluster& cluster,
              const graf::workload::Schedule& users,
              const std::vector<double>& weights, double slo,
              double measure_from, double end) {
  using namespace graf;
  ArmResult out;
  out.name = name;
  workload::ClosedLoopConfig g;
  g.users = users;
  g.api_weights = weights;
  g.seed = 85;
  g.on_complete = [&](const trace::RequestTrace& t) {
    if (cluster.now() < measure_from) return;
    if (!t.ok) {
      ++out.failures;
    } else {
      ++out.measured;
      if (t.e2e_ms() > slo) ++out.violations;
    }
  };
  workload::ClosedLoopGenerator gen{cluster, g};
  gen.start(end);
  for (double t = 5.0; t <= end; t += 5.0) {
    cluster.run_until(t);
    if (t < measure_from) continue;
    const double quota = cluster.total_quota();
    out.quota_samples.push_back(quota);
    out.core_seconds += quota / 1000.0 * 5.0;
  }
  return out;
}

/// Over-provisioning against the cheapest allocation any arm used at each
/// instant: all arms serve the identical workload, so the per-tick minimum
/// is a served-the-load witness and the excess above it is capacity that
/// bought nothing at that moment.
void fill_overprovisioning(std::vector<ArmResult>& arms) {
  std::size_t ticks = arms.front().quota_samples.size();
  for (const auto& a : arms) ticks = std::min(ticks, a.quota_samples.size());
  for (std::size_t i = 0; i < ticks; ++i) {
    double needed = arms.front().quota_samples[i];
    for (const auto& a : arms) needed = std::min(needed, a.quota_samples[i]);
    for (auto& a : arms)
      a.overprov_core_s += (a.quota_samples[i] - needed) / 1000.0 * 5.0;
  }
}

void report(const std::string& title, const std::vector<ArmResult>& arms) {
  using graf::Table;
  Table table{title};
  table.header({"arm", "SLO violation (%)", "violations", "failures",
                "completions", "core-seconds", "over-prov core-s"});
  for (const auto& a : arms) {
    table.row({a.name, Table::num(a.violation_pct(), 2),
               Table::integer(static_cast<long long>(a.violations)),
               Table::integer(static_cast<long long>(a.failures)),
               Table::integer(static_cast<long long>(a.measured)),
               Table::num(a.core_seconds, 0),
               Table::num(a.overprov_core_s, 0)});
  }
  table.print(std::cout);
}

graf::forecast::ForecastSpec forecast_spec() {
  graf::forecast::ForecastSpec spec;
  spec.enabled = true;
  spec.kind = graf::forecast::ForecastKind::kHoltWinters;
  // Horizon 2 control ticks = 10 s of lookahead: covers the simulator's
  // ~5.5 s instance-creation delay with margin (DESIGN.md §3.11).
  spec.gate.horizon_steps = 2;
  return spec;
}

}  // namespace

int main() {
  using namespace graf;
  auto stack = bench::build_or_load_stack(bench::online_boutique_stack_config());
  const double slo = stack.default_slo_ms;
  const auto& weights = stack.topo.api_weights;
  const double thr = bench::tune_hpa_threshold(stack.topo, 1250.0, slo, 81);

  // -- (a) doubling surge: 625 -> 1250 Locust threads at t=150 s ------------
  const auto surge = workload::Schedule::step(625.0, 1250.0, kSurgeAt);
  std::vector<ArmResult> surge_arms;
  {
    sim::Cluster cluster = apps::make_cluster(stack.topo, {.seed = 83});
    auto rt = bench::make_graf_runtime(stack, slo);
    rt.autoscaler->enable_forecast(forecast_spec());
    rt.autoscaler->attach(cluster, kSurgeEnd);
    surge_arms.push_back(run("GRAF forecast+plan", cluster, surge, weights,
                             slo, kSurgeAt, kSurgeEnd));
    std::cerr << "forecast arm: " << rt.autoscaler->forecast_gate()->prewarms()
              << " pre-warm ticks, "
              << rt.autoscaler->forecast_gate()->fallbacks() << " fallbacks\n";
  }
  {
    sim::Cluster cluster = apps::make_cluster(stack.topo, {.seed = 83});
    auto rt = bench::make_graf_runtime(stack, slo);
    rt.autoscaler->attach(cluster, kSurgeEnd);
    surge_arms.push_back(run("GRAF plan-alone", cluster, surge, weights, slo,
                             kSurgeAt, kSurgeEnd));
  }
  {
    sim::Cluster cluster = apps::make_cluster(stack.topo, {.seed = 83});
    autoscalers::K8sHpa hpa{{.target_utilization = thr}};
    hpa.attach(cluster, kSurgeEnd);
    surge_arms.push_back(run("K8s HPA (tuned)", cluster, surge, weights, slo,
                             kSurgeAt, kSurgeEnd));
  }
  fill_overprovisioning(surge_arms);
  report("Doubling surge: users 625 -> 1250 at t=150 s, measured from the surge",
         surge_arms);

  // -- (b) Azure trace: diurnal + bursts, users in [450, 1350] --------------
  const workload::AzureTraceConfig trace_cfg{};
  const auto azure = workload::azure_user_schedule(trace_cfg, 450.0, 1350.0);
  std::vector<ArmResult> azure_arms;
  {
    sim::Cluster cluster = apps::make_cluster(stack.topo, {.seed = 73});
    auto rt = bench::make_graf_runtime(stack, slo);
    rt.autoscaler->enable_forecast(forecast_spec());
    rt.autoscaler->attach(cluster, kAzureEnd);
    azure_arms.push_back(run("GRAF forecast+plan", cluster, azure, weights,
                             slo, 60.0, kAzureEnd));
  }
  {
    sim::Cluster cluster = apps::make_cluster(stack.topo, {.seed = 73});
    auto rt = bench::make_graf_runtime(stack, slo);
    rt.autoscaler->attach(cluster, kAzureEnd);
    azure_arms.push_back(
        run("GRAF plan-alone", cluster, azure, weights, slo, 60.0, kAzureEnd));
  }
  {
    sim::Cluster cluster = apps::make_cluster(stack.topo, {.seed = 73});
    autoscalers::K8sHpa hpa{{.target_utilization = thr}};
    hpa.attach(cluster, kAzureEnd);
    azure_arms.push_back(
        run("K8s HPA (tuned)", cluster, azure, weights, slo, 60.0, kAzureEnd));
  }
  fill_overprovisioning(azure_arms);
  report("Azure trace: users in [450, 1350], measured from t=60 s", azure_arms);

  std::cout << "Shape check: pre-warming against the forecast's upper band "
               "should cut the\nsurge violation rate below plan-alone at a "
               "bounded over-provisioning cost.\n";

  const ArmResult& fc = surge_arms[0];
  const ArmResult& plan = surge_arms[1];
  const ArmResult& hpa = surge_arms[2];
  bench::results().record("forecast_surge.forecast.slo_violation_pct",
                          fc.violation_pct(), "%");
  bench::results().record("forecast_surge.plan_alone.slo_violation_pct",
                          plan.violation_pct(), "%");
  bench::results().record("forecast_surge.k8s_hpa.slo_violation_pct",
                          hpa.violation_pct(), "%");
  bench::results().record("forecast_surge.forecast.overprov_core_seconds",
                          fc.overprov_core_s, "core-s");
  bench::results().record("forecast_surge.plan_alone.overprov_core_seconds",
                          plan.overprov_core_s, "core-s");
  bench::results().record("forecast_surge.k8s_hpa.overprov_core_seconds",
                          hpa.overprov_core_s, "core-s");
  bench::results().record("forecast_surge.azure.forecast.slo_violation_pct",
                          azure_arms[0].violation_pct(), "%");
  bench::results().record("forecast_surge.azure.plan_alone.slo_violation_pct",
                          azure_arms[1].violation_pct(), "%");
  bench::results().record("forecast_surge.azure.k8s_hpa.slo_violation_pct",
                          azure_arms[2].violation_pct(), "%");
  // Preserve the micro-bench rows already tracked in BENCH_perf.json.
  bench::results().merge_json_file(bench::bench_out_path("BENCH_perf.json"));
  bench::write_bench_results("BENCH_perf.json");

  // The PR-7 acceptance criterion: forecast+plan strictly beats plan-alone
  // on the doubling surge.
  return fc.violation_pct() < plan.violation_pct() ? 0 : 1;
}
