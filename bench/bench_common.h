// Shared infrastructure for the benchmark harness (one binary per paper
// table/figure, see DESIGN.md §4).
//
// The expensive part of GRAF — Algorithm-1 search-space reduction, sample
// collection, and GNN training — is identical across many figures, so it is
// built once per application and cached under GRAF_ARTIFACTS (default
// ./graf_artifacts). The first bench that needs a trained stack pays the
// cost; the rest load it in milliseconds. Delete the directory to retrain.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "apps/catalog.h"
#include "core/configuration_solver.h"
#include "core/graf_controller.h"
#include "core/latency_predictor.h"
#include "core/resource_controller.h"
#include "core/sample_collector.h"
#include "core/workload_analyzer.h"
#include "gnn/latency_model.h"
#include "sim/cluster.h"
#include "telemetry/exporter.h"

namespace graf::bench {

/// Where cached datasets/models live.
std::string artifacts_dir();

/// Where machine-readable bench results (`BENCH_*.json`) are written:
/// env GRAF_BENCH_OUT when set, else the current directory.
std::string bench_out_path(const std::string& filename);

/// Process-wide sink for machine-readable results. Bench binaries record
/// `name -> value/unit/timestamp` rows here (bench_perf_micro does it
/// automatically via its reporter) and flush with write_bench_results().
telemetry::BenchExporter& results();

/// Write accumulated results to bench_out_path(filename); prints the
/// destination to stderr. No-op (returns false) when nothing was recorded.
bool write_bench_results(const std::string& filename);

/// Benchmark-scale knobs. The paper's full-scale constants (50k samples,
/// 70k iterations) are impractical on one CPU core; these defaults keep a
/// cold build of one application stack under ~5 minutes while preserving
/// every qualitative result. Override via env GRAF_SCALE=full for a long
/// run closer to paper scale.
struct StackConfig {
  apps::Topology topo;
  std::vector<Qps> base_qps;       ///< reference per-API workload
  std::size_t samples = 6000;
  std::size_t train_iterations = 10000;
  std::uint64_t seed = 3;
  double slo_floor_factor = 1.5;   ///< default SLO = floor_p99 * this
  /// Collect with Locust-style closed-loop users (paper: Online Boutique)
  /// instead of Vegeta-style open-loop arrivals (paper: Social Network).
  bool closed_loop_collection = false;
};

/// A trained GRAF stack for one application.
struct TrainedStack {
  apps::Topology topo;
  gnn::Dag dag;
  std::vector<Qps> base_qps;
  double floor_p99 = 0.0;          ///< e2e p99 at "sufficient CPU"
  double default_slo_ms = 0.0;
  core::SearchSpace space;
  std::vector<std::vector<double>> fanout;  ///< traced 90%-ile fan-out
  gnn::Dataset dataset;                     ///< full collected dataset
  std::unique_ptr<core::LatencyPredictor> predictor;

  /// Per-node workload for the given per-API rates under the traced fanout.
  std::vector<double> node_workload(const std::vector<Qps>& api_qps) const;
};

/// Standard configs for the two evaluation applications (paper §5).
StackConfig online_boutique_stack_config();
StackConfig social_network_stack_config();

/// The collector configuration the stacks are built with (original search
/// bounds for Fig. 13 reporting).
core::SampleCollectorConfig stack_collector_config();

/// Build (or load from cache) the trained stack for a config. Prints
/// progress to stderr.
TrainedStack build_or_load_stack(const StackConfig& cfg);

/// Everything needed to run GRAF as an autoscaler against a cluster.
struct GrafRuntime {
  std::unique_ptr<core::WorkloadAnalyzer> analyzer;
  std::unique_ptr<core::ConfigurationSolver> solver;
  std::unique_ptr<core::ResourceController> controller;
  std::unique_ptr<core::GrafController> autoscaler;
};

GrafRuntime make_graf_runtime(TrainedStack& stack, double slo_ms,
                              core::GrafControllerConfig cfg = {});

/// Collects every successful request's latency via completion callbacks
/// (latency *windows* prune by horizon; experiments need the full run).
class LatencyRecorder {
 public:
  void add(double latency_ms) { latencies_.push_back(latency_ms); }
  /// Completion callback recording success latencies and failures.
  sim::Cluster::CompletionFn hook();

  const std::vector<double>& latencies() const { return latencies_; }
  std::size_t failures() const { return failures_; }
  std::size_t count() const { return latencies_.size(); }
  double percentile(double rank) const;

 private:
  std::vector<double> latencies_;
  std::size_t failures_ = 0;
};

/// Tuned-threshold search (§5.3): the highest HPA utilization threshold
/// (fewest resources) whose steady-state p99 under `users` closed-loop
/// load meets the SLO. Mirrors the paper's hand-tuning.
double tune_hpa_threshold(const apps::Topology& topo, double users, double slo_ms,
                          std::uint64_t seed = 17);

/// Steady-state measurement of an autoscaled cluster under closed-loop
/// load: runs `settle` seconds, then measures for `measure` seconds.
struct SteadyStateResult {
  double p99_ms = 0.0;
  double p95_ms = 0.0;
  double mean_total_instances = 0.0;
  double mean_total_quota_mc = 0.0;
  std::vector<double> mean_instances_per_service;
};

SteadyStateResult measure_steady_state(sim::Cluster& cluster, double users,
                                       const std::vector<double>& api_weights,
                                       Seconds settle, Seconds measure,
                                       std::uint64_t seed = 23);

/// True when env GRAF_SCALE=full (paper-scale runs).
bool full_scale();

}  // namespace graf::bench
