// Serving-path micro-benchmarks (google-benchmark): the costs the online
// stack adds to the control loop — binary checkpoint save/load, registry
// publish + promote, and the hot-swap a planner pays when the trainer
// promotes a new model mid-flight.
#include <benchmark/benchmark.h>

#include <map>
#include <memory>
#include <sstream>
#include <string>

#include "common/rng.h"
#include "gnn/latency_model.h"
#include "serve/checkpoint.h"
#include "serve/model_registry.h"
#include "serve/serving_handle.h"

namespace {

using namespace graf;

gnn::Dag chain(std::size_t n) {
  gnn::Dag d;
  for (std::size_t i = 0; i < n; ++i) d.add_node("s" + std::to_string(i));
  for (std::size_t i = 0; i + 1 < n; ++i)
    d.add_edge(static_cast<int>(i), static_cast<int>(i + 1));
  return d;
}

gnn::Dataset tiny_dataset(std::size_t nodes, std::size_t count) {
  Rng rng{1};
  gnn::Dataset out;
  for (std::size_t i = 0; i < count; ++i) {
    gnn::Sample s;
    for (std::size_t n = 0; n < nodes; ++n) {
      s.workload.push_back(rng.uniform(10.0, 100.0));
      s.quota.push_back(rng.uniform(300.0, 2000.0));
    }
    s.latency_ms = rng.uniform(50.0, 500.0);
    out.push_back(std::move(s));
  }
  return out;
}

/// A lightly trained model sized like the paper's applications (state=nodes).
gnn::LatencyModel& shared_model(std::size_t nodes) {
  static std::map<std::size_t, gnn::LatencyModel> models;
  auto it = models.find(nodes);
  if (it == models.end()) {
    gnn::LatencyModel m{chain(nodes), gnn::MpnnConfig{}, 3};
    gnn::TrainConfig cfg;
    cfg.iterations = 40;
    cfg.batch_size = 64;
    cfg.eval_every = 40;
    m.fit(tiny_dataset(nodes, 256), {}, cfg);
    it = models.emplace(nodes, std::move(m)).first;
  }
  return it->second;
}

serve::CheckpointMeta bench_meta() {
  return {.application = "bench", .slo_ms = 100.0, .train_samples = 256,
          .val_error_pct = 10.0, .created_sim_time = 0.0};
}

void BM_CheckpointSave(benchmark::State& state) {
  auto& model = shared_model(static_cast<std::size_t>(state.range(0)));
  std::string bytes;
  for (auto _ : state) {
    std::ostringstream os{std::ios::binary};
    serve::save_checkpoint(os, model, bench_meta());
    bytes = os.str();
    benchmark::DoNotOptimize(bytes.data());
  }
  state.counters["bytes"] = static_cast<double>(bytes.size());
}

void BM_CheckpointLoad(benchmark::State& state) {
  auto& model = shared_model(static_cast<std::size_t>(state.range(0)));
  std::ostringstream os{std::ios::binary};
  serve::save_checkpoint(os, model, bench_meta());
  const std::string bytes = os.str();
  for (auto _ : state) {
    std::istringstream is{bytes, std::ios::binary};
    serve::LoadedCheckpoint loaded = serve::load_checkpoint(is);
    benchmark::DoNotOptimize(loaded.model.node_count());
  }
}

void BM_RegistryPublishPromote(benchmark::State& state) {
  auto& model = shared_model(6);
  serve::ModelRegistry registry;  // in-memory: isolates the copy + bookkeeping
  serve::ServingHandle handle;
  const serve::ModelKey key{.application = "bench", .slo_ms = 100.0};
  registry.attach_handle(key, &handle);
  for (auto _ : state) {
    const auto v = registry.publish(key, model, bench_meta());
    registry.promote(key, v);
    benchmark::DoNotOptimize(handle.acquire());
  }
}

/// What the planner pays when a promotion lands: one handle swap plus the
/// acquire on the next plan(). This is the "hot-swap cost" the design doc
/// promises stays off the allocation path.
void BM_HandleSwapAcquire(benchmark::State& state) {
  auto& model = shared_model(6);
  serve::ServingHandle handle;
  auto a = std::make_shared<gnn::LatencyModel>(model.clone());
  auto b = std::make_shared<gnn::LatencyModel>(model.clone());
  bool flip = false;
  for (auto _ : state) {
    handle.swap(flip ? a : b);
    flip = !flip;
    benchmark::DoNotOptimize(handle.acquire());
  }
}

BENCHMARK(BM_CheckpointSave)->Arg(6)->Arg(12)->Arg(24);
BENCHMARK(BM_CheckpointLoad)->Arg(6)->Arg(12)->Arg(24);
BENCHMARK(BM_RegistryPublishPromote);
BENCHMARK(BM_HandleSwapAcquire);

}  // namespace
