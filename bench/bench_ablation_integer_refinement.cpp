// Ablation (paper §6 "Integer Optimization for instances scaling"): how
// much CPU does greedy integer refinement recover from the Eq.-7 ceil
// rounding? The paper predicts "slight improvement room ... bounded by the
// CPU resource unit for an instance"; this bench quantifies it and verifies
// that the refined plans still meet their SLOs on the cluster.
#include <iostream>

#include "bench_common.h"
#include "common/table.h"
#include "core/integer_refiner.h"
#include "core/sample_collector.h"

int main() {
  using namespace graf;
  auto stack = bench::build_or_load_stack(bench::online_boutique_stack_config());
  auto rt = bench::make_graf_runtime(stack, stack.default_slo_ms);
  core::IntegerRefiner refiner{stack.predictor->model()};

  std::vector<Millicores> units;
  for (const auto& svc : stack.topo.services) units.push_back(svc.unit_quota);

  sim::Cluster cluster = apps::make_cluster(stack.topo, {.seed = 91});
  core::WorkloadAnalyzer analyzer{cluster.api_count(), cluster.service_count()};
  analyzer.set_fanout(stack.fanout);
  core::SampleCollectorConfig mcfg;
  mcfg.closed_loop = true;  // measure with the training load model
  core::SampleCollector measurer{cluster, analyzer, mcfg};

  Table table{"Ablation: Eq. 7 ceil vs greedy integer refinement"};
  table.header({"SLO (ms)", "Eq.7 instances", "refined instances", "saved (mc)",
                "refined predicted (ms)", "refined measured p99 (ms)", "within SLO"});

  for (double f : {1.3, 1.5, 1.8, 2.2}) {
    const double slo = stack.floor_p99 * f;
    rt.autoscaler->set_slo(slo);
    const auto plan = rt.controller->plan(stack.base_qps, slo);
    int eq7_total = 0;
    for (int i : plan.instances) eq7_total += i;

    const auto workload = stack.node_workload(stack.base_qps);
    const auto refined = refiner.refine(workload, slo, plan.instances, units,
                                        stack.space.lo);
    int refined_total = 0;
    for (int i : refined.instances) refined_total += i;

    for (std::size_t s = 0; s < refined.quota.size(); ++s)
      cluster.apply_total_quota(static_cast<int>(s), refined.quota[s], units[s]);
    const double measured = measurer.measure_tail(stack.base_qps, 20.0, 99.0);

    table.row({Table::num(slo, 0), Table::integer(eq7_total),
               Table::integer(refined_total), Table::num(refined.saved_mc, 0),
               Table::num(refined.predicted_ms, 0), Table::num(measured, 0),
               measured <= slo * 1.1 ? "yes" : "no"});
  }
  table.print(std::cout);
  std::cout << "Expectation (paper §6): a small but non-zero instance saving,\n"
               "bounded by one instance unit per service, without SLO damage.\n";
  return 0;
}
