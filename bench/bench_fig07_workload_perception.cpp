// Figure 7: the workload each microservice *perceives* during a cart-page
// flood — the cascading effect made visible. Under the K8s autoscaler each
// service reaches its peak throughput only after every service before it in
// the chain has finished scaling (paper: Frontend at 31 s, Cart at 118 s,
// the rest at ~155 s); with proactive whole-chain scaling every service
// reaches its peak at roughly the same time (~58 s).
#include <iostream>
#include <string>
#include <vector>

#include "autoscalers/k8s_hpa.h"
#include "autoscalers/proactive_oracle.h"
#include "bench_common.h"
#include "common/table.h"
#include "core/workload_analyzer.h"
#include "workload/open_loop.h"

namespace {

constexpr double kEnd = 300.0;
constexpr double kSurgeAt = 10.0;

struct PerceptionResult {
  // perceived qps per service, sampled every 5 s
  std::vector<std::vector<double>> series;
  std::vector<double> time_to_peak;  // per service, seconds
};

PerceptionResult run(graf::autoscalers::Autoscaler& scaler, std::uint64_t seed) {
  using namespace graf;
  auto topo = apps::online_boutique();
  sim::Cluster cluster = apps::make_cluster(topo, {.seed = seed});
  scaler.attach(cluster, kEnd);
  // 600 qps: with this topology's demands, every tier of the chain is
  // throughput-limited at its initial size, so the staged perception of the
  // paper's 300-qps run reproduces (our services are provisioned larger).
  workload::OpenLoopConfig g;
  g.rate = workload::Schedule::step(5.0, 600.0, kSurgeAt);
  g.api_weights = {1.0, 0.0, 0.0};
  g.seed = seed + 1;
  workload::OpenLoopGenerator gen{cluster, g};
  gen.start(kEnd);

  PerceptionResult out;
  out.series.assign(cluster.service_count(), {});
  for (double t = 5.0; t <= kEnd; t += 5.0) {
    cluster.run_until(t);
    for (std::size_t s = 0; s < cluster.service_count(); ++s)
      out.series[s].push_back(cluster.qps_avg(static_cast<int>(s), 5.0));
  }
  // Time to first reach 90% of the service's eventual peak.
  for (std::size_t s = 0; s < out.series.size(); ++s) {
    double peak = 0.0;
    for (double v : out.series[s]) peak = std::max(peak, v);
    double t_reach = kEnd;
    for (std::size_t i = 0; i < out.series[s].size(); ++i) {
      if (out.series[s][i] >= 0.9 * peak) {
        t_reach = 5.0 * static_cast<double>(i + 1);
        break;
      }
    }
    out.time_to_peak.push_back(t_reach);
  }
  return out;
}

}  // namespace

int main() {
  using namespace graf;
  const auto topo = apps::online_boutique();

  autoscalers::K8sHpa hpa{{.target_utilization = 0.5}};
  PerceptionResult reactive = run(hpa, 13);

  std::vector<double> demands;
  for (const auto& svc : topo.services) demands.push_back(svc.demand_mean_ms);
  autoscalers::ProactiveOracle oracle{{}, core::expected_fanout(topo), demands};
  PerceptionResult proactive = run(oracle, 13);

  Table table{"Figure 7: time for each service to perceive its peak workload (s)"};
  table.header({"service", "K8s autoscaler", "proactive"});
  for (std::size_t s = 0; s < topo.service_count(); ++s) {
    table.row({topo.services[s].name, Table::num(reactive.time_to_peak[s], 0),
               Table::num(proactive.time_to_peak[s], 0)});
  }
  table.print(std::cout);

  Table series{"Figure 7 (series): perceived workload under K8s autoscaler (qps)"};
  {
    std::vector<std::string> hdr{"time (s)"};
    for (const auto& svc : topo.services) hdr.push_back(svc.name);
    series.header(hdr);
    for (std::size_t i = 3; i < reactive.series[0].size(); i += 6) {
      std::vector<std::string> row{Table::num(5.0 * static_cast<double>(i + 1), 0)};
      for (std::size_t s = 0; s < topo.service_count(); ++s)
        row.push_back(Table::num(reactive.series[s][i], 0));
      series.row(row);
    }
  }
  series.print(std::cout);

  std::cout << "Shape check (paper): under the K8s autoscaler the frontend peaks\n"
               "first and each service deeper in the chain peaks progressively\n"
               "later; proactive scaling lets every service peak together.\n";
  return 0;
}
