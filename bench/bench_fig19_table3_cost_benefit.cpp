// Table 3 + Figure 19 (§5.3 cost-benefit): what sample collection and
// training cost on AWS EC2, and for which (update period, workload) region
// adopting GRAF is profitable. Table 3 reproduces the paper's numbers
// exactly (it is a pricing computation); Figure 19's frontier combines the
// cost with a measured saved-instances-per-qps slope.
#include <iostream>

#include "autoscalers/k8s_hpa.h"
#include "bench_common.h"
#include "common/table.h"
#include "core/cost_model.h"

int main() {
  using namespace graf;

  // ---- Table 3 (paper-exact pricing computation) ---------------------------
  const auto cost = core::training_cost(50000, 15.0, 16.0);
  Table t3{"Table 3: expected budget for 50k samples + training (AWS EC2)"};
  t3.header({"module", "instance", "time (h)", "budget ($)"});
  t3.row({"Load Generator", "c4.large", Table::num(cost.load_gen_hours, 1),
          Table::num(cost.load_gen_usd, 2)});
  t3.row({"Worker Node", "c4.2xlarge", Table::num(cost.worker_hours, 1),
          Table::num(cost.worker_usd, 2)});
  t3.row({"Model Training", "g4dn.xlarge", Table::num(cost.gpu_hours, 1),
          Table::num(cost.gpu_usd, 2)});
  t3.print(std::cout);
  std::cout << "Total: $" << Table::num(cost.total_usd, 2)
            << " (paper: $112.17)\n\n";

  // ---- Figure 19: profit frontier ------------------------------------------
  // Measure the saved-instances slope once at a reference workload.
  auto stack = bench::build_or_load_stack(bench::online_boutique_stack_config());
  const double users = 1250.0;
  const double thr =
      bench::tune_hpa_threshold(stack.topo, users, stack.default_slo_ms, 61);
  bench::SteadyStateResult graf_res;
  {
    sim::Cluster cluster = apps::make_cluster(stack.topo, {.seed = 63});
    auto rt = bench::make_graf_runtime(stack, stack.default_slo_ms);
    rt.autoscaler->attach(cluster, 1e9);
    graf_res = bench::measure_steady_state(cluster, users, stack.topo.api_weights,
                                           240.0, 120.0, 65);
  }
  bench::SteadyStateResult hpa_res;
  {
    sim::Cluster cluster = apps::make_cluster(stack.topo, {.seed = 63});
    autoscalers::K8sHpa hpa{{.target_utilization = thr}};
    hpa.attach(cluster, 1e9);
    hpa_res = bench::measure_steady_state(cluster, users, stack.topo.api_weights,
                                          240.0, 120.0, 65);
  }
  const double ref_qps = users / 2.6;  // think-time-dominated closed loop
  const double saved_per_qps =
      std::max(0.0, (hpa_res.mean_total_instances - graf_res.mean_total_instances) /
                        ref_qps);
  std::cout << "Measured saving: " << Table::num(saved_per_qps, 3)
            << " instances per qps (at ~" << Table::num(ref_qps, 0) << " qps)\n";

  Table fig19{"Figure 19: breakeven workload vs microservice update period"};
  fig19.header({"update period (days)", "breakeven workload (qps)",
                "profit at 2000 qps ($)"});
  for (double days : {5.0, 10.0, 20.0, 30.0, 45.0, 60.0}) {
    // Breakeven: saved(qps) * $/inst/day * days == cost.
    const double daily_per_qps = core::daily_saving_usd(saved_per_qps);
    const double breakeven_qps =
        daily_per_qps > 0.0 ? cost.total_usd / (daily_per_qps * days) : 1e18;
    const double profit_2000 =
        core::net_profit_usd(saved_per_qps * 2000.0, days, cost);
    fig19.row({Table::num(days, 0), Table::num(breakeven_qps, 0),
               Table::num(profit_2000, 0)});
  }
  fig19.print(std::cout);
  std::cout << "Shape check (paper): the profit region grows with both the update\n"
               "period and the workload; long-lived high-traffic deployments repay\n"
               "the one-time collection+training cost quickly.\n";
  return 0;
}
