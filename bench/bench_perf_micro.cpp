// Performance micro-benchmarks (google-benchmark): the per-operation costs
// behind GRAF's control loop — GNN inference, a full solver run, simulator
// event throughput, the numeric kernels, and the telemetry layer itself
// (histogram record cost, scoped-timer overhead, tail-query strategies).
//
// Results are mirrored through the telemetry BenchExporter into
// BENCH_perf.json (see bench_common.h: env GRAF_BENCH_OUT relocates it), so
// the perf trajectory is machine-readable instead of table-only.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdint>

#include "bench_common.h"
#include "common/stats.h"
#include "common/thread_pool.h"
#include "core/configuration_solver.h"
#include "core/sample_collector.h"
#include "core/tiered_planner.h"
#include "core/workload_analyzer.h"
#include "fleet/fleet_server.h"
#include "forecast/gate.h"
#include "gnn/latency_model.h"
#include "gnn/surrogate_model.h"
#include "nn/tensor.h"
#include "sim/sharded_cluster.h"
#include "telemetry/metrics.h"
#include "telemetry/profiler.h"
#include "trace/latency_window.h"
#include "workload/open_loop.h"

namespace {

using namespace graf;

gnn::Dag chain(std::size_t n) {
  gnn::Dag d;
  for (std::size_t i = 0; i < n; ++i) d.add_node("s" + std::to_string(i));
  for (std::size_t i = 0; i + 1 < n; ++i)
    d.add_edge(static_cast<int>(i), static_cast<int>(i + 1));
  return d;
}

gnn::Dataset tiny_dataset(std::size_t nodes, std::size_t count) {
  Rng rng{1};
  gnn::Dataset out;
  for (std::size_t i = 0; i < count; ++i) {
    gnn::Sample s;
    for (std::size_t n = 0; n < nodes; ++n) {
      s.workload.push_back(rng.uniform(10.0, 100.0));
      s.quota.push_back(rng.uniform(300.0, 2000.0));
    }
    s.latency_ms = rng.uniform(50.0, 500.0);
    out.push_back(std::move(s));
  }
  return out;
}

gnn::LatencyModel& shared_model() {
  static gnn::LatencyModel model = [] {
    gnn::LatencyModel m{chain(6), gnn::MpnnConfig{}, 3};
    gnn::TrainConfig cfg;
    cfg.iterations = 50;
    cfg.batch_size = 64;
    cfg.eval_every = 50;
    m.fit(tiny_dataset(6, 512), {}, cfg);
    return m;
  }();
  return model;
}

void BM_GnnInference(benchmark::State& state) {
  auto& model = shared_model();
  std::vector<double> w(6, 50.0);
  std::vector<double> q(6, 1000.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.predict(w, q));
  }
}
BENCHMARK(BM_GnnInference);

void BM_SolverFullRun(benchmark::State& state) {
  auto& model = shared_model();
  core::SolverConfig cfg;
  cfg.max_iterations = static_cast<std::size_t>(state.range(0));
  core::ConfigurationSolver solver{model, cfg};
  std::vector<double> w(6, 50.0);
  std::vector<Millicores> lo(6, 300.0);
  std::vector<Millicores> hi(6, 2000.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver.solve(w, 150.0, lo, hi));
  }
}
BENCHMARK(BM_SolverFullRun)->Arg(100)->Arg(500);

// Throughput benches report events/s against *wall clock* measured around
// the run itself. benchmark::Counter's kIsRate flags divide by accumulated
// CPU time, which over-reports per-core throughput the moment a benchmark
// uses more than one thread (8 worker threads x 1s wall = 8s CPU) — the
// "contended rows are mutually inconsistent" caveat EXPERIMENTS.md used to
// carry. UseRealTime() keeps the reported time column on the same basis.
struct WallRate {
  double wall = 0.0;
  std::uint64_t items = 0;
  std::chrono::steady_clock::time_point t0;

  void start() { t0 = std::chrono::steady_clock::now(); }
  void stop(std::uint64_t n) {
    wall += std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
                .count();
    items += n;
  }
  benchmark::Counter counter() const {
    return benchmark::Counter(wall > 0.0 ? static_cast<double>(items) / wall
                                         : 0.0);
  }
};

void BM_SimulatorEventThroughput(benchmark::State& state) {
  WallRate rate;
  for (auto _ : state) {
    state.PauseTiming();
    auto topo = apps::online_boutique();
    sim::Cluster cluster = apps::make_cluster(topo, {.seed = 5});
    workload::OpenLoopConfig g;
    g.rate = workload::Schedule::constant(200.0);
    g.api_weights = topo.api_weights;
    workload::OpenLoopGenerator gen{cluster, g};
    gen.start(30.0);
    state.ResumeTiming();
    rate.start();
    cluster.run_until(30.0);
    rate.stop(cluster.events().processed());
  }
  state.counters["events/s"] = rate.counter();
}
BENCHMARK(BM_SimulatorEventThroughput)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

// Same workload with a full telemetry registry attached (per-service
// instruments, e2e histograms, event-pop profiling): the all-in overhead of
// observing the simulator.
void BM_SimulatorEventThroughputTelemetry(benchmark::State& state) {
  WallRate rate;
  for (auto _ : state) {
    state.PauseTiming();
    auto topo = apps::online_boutique();
    sim::Cluster cluster = apps::make_cluster(topo, {.seed = 5});
    telemetry::MetricsRegistry registry;
    cluster.set_metrics(&registry);
    workload::OpenLoopConfig g;
    g.rate = workload::Schedule::constant(200.0);
    g.api_weights = topo.api_weights;
    workload::OpenLoopGenerator gen{cluster, g};
    gen.start(30.0);
    state.ResumeTiming();
    rate.start();
    cluster.run_until(30.0);
    rate.stop(cluster.events().processed());
  }
  state.counters["events/s"] = rate.counter();
}
BENCHMARK(BM_SimulatorEventThroughputTelemetry)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

// Aggregate sharded-simulator throughput (ISSUE 8's tentpole): the same
// boutique workload at 5x the request rate, partitioned over 8 shard
// queues, run in conservative rpc_latency windows on Arg(0) pool threads.
// The /1 -> /8 pair is the scaling claim (>= 4x aggregate events/s on a
// multi-core host; flat wall-clock on single-core CI, the PR-3 caveat) —
// results are bit-identical across the pair by construction, so the pair
// measures pure speedup. Gated in scripts/bench_check.py on /1 only.
void BM_ShardedSimulatorEventThroughput(benchmark::State& state) {
  set_global_threads(static_cast<std::size_t>(state.range(0)));
  WallRate rate;
  for (auto _ : state) {
    state.PauseTiming();
    auto topo = apps::online_boutique();
    sim::ShardedClusterConfig cfg;
    cfg.seed = 5;
    cfg.shards = 8;
    cfg.rpc_latency = 0.005;  // 5ms hops: 200 sync windows per sim-second
    sim::ShardedCluster cluster{topo.services, topo.apis, cfg};
    workload::OpenLoopConfig g;
    g.rate = workload::Schedule::constant(1000.0);
    g.api_weights = topo.api_weights;
    workload::preload_open_loop(cluster, g, 30.0);
    state.ResumeTiming();
    rate.start();
    cluster.run_until(30.0);
    rate.stop(cluster.events_processed());
  }
  state.counters["events/s"] = rate.counter();
  set_global_threads(0);
}
BENCHMARK(BM_ShardedSimulatorEventThroughput)
    ->Arg(1)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

void BM_Matmul(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  nn::Tensor a{n, n, 0.5};
  nn::Tensor b{n, n, 0.25};
  for (auto _ : state) {
    benchmark::DoNotOptimize(nn::matmul(a, b));
  }
}
BENCHMARK(BM_Matmul)->Arg(32)->Arg(128);

// The PR-5 blocked kernel on its own row (BM_Matmul keeps the historical
// name for trajectory continuity; both run the same kernel now), with the
// reference triple loop alongside for the speedup denominator.
void BM_MatmulBlocked(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  nn::Tensor a{n, n, 0.5};
  nn::Tensor b{n, n, 0.25};
  nn::Tensor out;
  for (auto _ : state) {
    nn::matmul_into(out, a, b);  // steady state: no allocation either
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_MatmulBlocked)->Arg(32)->Arg(128)->Arg(256);

void BM_MatmulNaive(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  nn::Tensor a{n, n, 0.5};
  nn::Tensor b{n, n, 0.25};
  for (auto _ : state) {
    benchmark::DoNotOptimize(nn::matmul_naive(a, b));
  }
}
BENCHMARK(BM_MatmulNaive)->Arg(128);

// Batched multi-start descent (one K x n tape) against the per-start
// fan-out it replaced as the default; identical answers, different cost.
void BM_SolveBatched(benchmark::State& state) {
  auto& model = shared_model();
  core::SolverConfig cfg;
  cfg.max_iterations = 300;
  cfg.multi_starts = static_cast<std::size_t>(state.range(0));
  cfg.batched_multi_start = true;
  core::ConfigurationSolver solver{model, cfg};
  std::vector<double> w(6, 50.0);
  std::vector<Millicores> lo(6, 300.0);
  std::vector<Millicores> hi(6, 2000.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver.solve(w, 150.0, lo, hi));
  }
}
BENCHMARK(BM_SolveBatched)->Arg(4)->Arg(8)->Unit(benchmark::kMillisecond);

void BM_SolveFanout(benchmark::State& state) {
  auto& model = shared_model();
  core::SolverConfig cfg;
  cfg.max_iterations = 300;
  cfg.multi_starts = static_cast<std::size_t>(state.range(0));
  cfg.batched_multi_start = false;
  core::ConfigurationSolver solver{model, cfg};
  std::vector<double> w(6, 50.0);
  std::vector<Millicores> lo(6, 300.0);
  std::vector<Millicores> hi(6, 2000.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver.solve(w, 150.0, lo, hi));
  }
}
BENCHMARK(BM_SolveFanout)->Arg(4)->Arg(8)->Unit(benchmark::kMillisecond);

// A controller tick answered from the plan cache: the steady-state cost of
// re-planning when traffic hasn't drifted out of its quantization bucket.
void BM_PlanCacheHit(benchmark::State& state) {
  auto& model = shared_model();
  core::ConfigurationSolver solver{model, {}};
  core::WorkloadAnalyzer analyzer{1, 6};
  analyzer.set_fanout({{1.0, 1.0, 1.0, 1.0, 1.0, 1.0}});
  std::vector<Millicores> lo(6, 300.0);
  std::vector<Millicores> hi(6, 2000.0);
  std::vector<Millicores> unit(6, 1000.0);
  core::ResourceController rc{model, solver, analyzer, lo, hi, unit};
  gnn::Dataset ref;
  gnn::Sample s;
  s.workload.assign(6, 60.0);
  s.quota.assign(6, 1000.0);
  s.latency_ms = 100.0;
  ref.push_back(s);
  rc.set_training_reference(ref);
  std::vector<Qps> api{50.0};
  // A loose SLO keeps the warm solve feasible (only feasible plans are
  // cached; the toy model's labels are random, so a tight SLO degrades).
  const double slo_ms = 1000.0;
  benchmark::DoNotOptimize(rc.plan(api, slo_ms));  // warm: one real solve
  for (auto _ : state) {
    benchmark::DoNotOptimize(rc.plan(api, slo_ms));
  }
  state.counters["plan_cache.hits"] =
      static_cast<double>(rc.plan_cache_hits());
  state.counters["plan_cache.misses"] =
      static_cast<double>(rc.plan_cache_misses());
}
BENCHMARK(BM_PlanCacheHit);

// -- distilled fast-path surrogate planning (DESIGN.md §3.14) ----------------

gnn::SurrogateModel& shared_surrogate() {
  static gnn::SurrogateModel model = [] {
    const std::vector<double> region(6, 100.0);
    const std::vector<Millicores> lo(6, 300.0);
    const std::vector<Millicores> hi(6, 2000.0);
    gnn::DistillConfig cfg;
    cfg.samples = 1024;
    cfg.train.iterations = 800;
    gnn::SurrogateDistiller::Result r =
        gnn::SurrogateDistiller::distill(shared_model(), region, lo, hi, cfg);
    return std::move(r.model);
  }();
  return model;
}

// Single-tenant plan throughput through the two-tier planner: surrogate
// multi-start descent + one full-GNN verification forward per plan. The
// time-per-op against BM_SolverFullRun/500 (the same descent budget through
// the full MPNN tape) is the fast-path speedup claim (>= 20x on the 6-node
// chain). The trust band is wide open so every iteration measures the
// accept path — escalation-rate quality is the topology test's bar
// (tests/surrogate_test.cpp), not this row's; the fast_hits/escalations
// counters make any surprise escalation visible in the emitted JSON.
// Gated in scripts/bench_check.py on the /1 row.
void BM_SurrogatePlanThroughput(benchmark::State& state) {
  set_global_threads(static_cast<std::size_t>(state.range(0)));
  auto& model = shared_model();
  core::SolverConfig scfg;
  scfg.max_iterations = 500;  // matches BM_SolverFullRun/500, the denominator
  core::ConfigurationSolver full{model, scfg};
  core::TieredPlannerConfig pcfg;
  pcfg.solver = scfg;
  pcfg.trust_band_pct = 1e9;
  core::TieredPlanner planner{
      std::make_shared<gnn::SurrogateModel>(shared_surrogate().clone()), pcfg};
  std::vector<double> w(6, 50.0);
  std::vector<Millicores> lo(6, 300.0);
  std::vector<Millicores> hi(6, 2000.0);
  // Loose SLO for the same reason as BM_PlanCacheHit: the toy model's labels
  // are random, and an SLO-breach verdict would detour into the full solve.
  const double slo_ms = 1000.0;
  WallRate rate;
  for (auto _ : state) {
    rate.start();
    benchmark::DoNotOptimize(planner.solve(model, full, w, slo_ms, lo, hi));
    rate.stop(1);
  }
  state.counters["plans/s"] = rate.counter();
  state.counters["fast_hits"] = static_cast<double>(planner.fast_hits());
  state.counters["escalations"] = static_cast<double>(planner.escalations());
  set_global_threads(0);
}
BENCHMARK(BM_SurrogatePlanThroughput)
    ->Arg(1)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

// One plain admission-sized distillation pass (sample the teacher, fit the
// MLP, validate): the cost a fleet tenant pays once at admission before the
// fast path starts earning it back. Gated in scripts/bench_check.py.
void BM_SurrogateDistill(benchmark::State& state) {
  auto& model = shared_model();
  const std::vector<double> region(6, 100.0);
  const std::vector<Millicores> lo(6, 300.0);
  const std::vector<Millicores> hi(6, 2000.0);
  gnn::DistillConfig cfg;
  cfg.samples = 512;
  cfg.train.iterations = 300;
  cfg.train.eval_every = 300;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        gnn::SurrogateDistiller::distill(model, region, lo, hi, cfg));
  }
}
BENCHMARK(BM_SurrogateDistill)->Unit(benchmark::kMillisecond);

// Aggregate fleet planning throughput: 8 same-model tenants per step, every
// tenant forced to a fresh solve (plan cache off, zero hysteresis band),
// fanned over the global pool at `threads` workers. Shared by the per-tenant
// and batched variants below; `batch_plans` selects the solve path.
void fleet_plan_throughput(benchmark::State& state, std::size_t threads,
                           bool batch_plans) {
  set_global_threads(threads);
  fleet::FleetServer server{{.ingest_capacity = 64, .batch_plans = batch_plans}};
  std::vector<fleet::TenantId> ids;
  for (int i = 0; i < 8; ++i) {
    fleet::TenantSpec spec;
    spec.application = "tenant" + std::to_string(i);
    // Loose SLO for the same reason as BM_PlanCacheHit: the toy model's
    // labels are random, and a degraded-path shortcut would skip solves.
    spec.slo_ms = 1000.0;
    spec.model = &shared_model();
    spec.lo.assign(6, 300.0);
    spec.hi.assign(6, 2000.0);
    spec.unit.assign(6, 1000.0);
    spec.fanout = {{1.0, 1.0, 1.0, 1.0, 1.0, 1.0}};
    spec.change_threshold = 0.0;   // never coast
    spec.plan_cache_capacity = 0;  // never answer from cache
    spec.solver.max_iterations = 60;
    ids.push_back(server.add_tenant(spec));
  }
  double now = 0.0;
  int round = 0;
  WallRate rate;
  for (auto _ : state) {
    now += 1.0;
    ++round;
    const double qps = 40.0 + 9.0 * (round % 7);
    for (const fleet::TenantId id : ids)
      server.push({.tenant = id, .now = now, .api_qps = {qps}, .samples = {}});
    rate.start();
    const std::uint64_t planned = server.step().planned;
    rate.stop(planned);
  }
  state.counters["plans/s"] = rate.counter();
  set_global_threads(0);
}

// The PR-6 one-solve-per-tenant fan-out. The Arg(1)->Arg(8) pair is the
// thread-scaling claim: on a multi-core host aggregate plans/s at 8 threads
// runs >= 2x the 1-thread row; on a single-core CI box the pair reads flat
// wall-clock (the PR-3 caveat) while still exercising the full fan-out
// path. Gated in scripts/bench_check.py on the /1 row only.
void BM_FleetPlanThroughput(benchmark::State& state) {
  fleet_plan_throughput(state, static_cast<std::size_t>(state.range(0)),
                        /*batch_plans=*/false);
}
BENCHMARK(BM_FleetPlanThroughput)
    ->Arg(1)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

// Block-diagonal batched planning (§3.13): the 8 same-model tenants coalesce
// into one stacked solve_batch per step instead of 8 independent descents.
// The /1 row against BM_FleetPlanThroughput/1 is the batching claim — same
// work, same bits, >= 2x aggregate plans/s from amortizing the MPNN forward/
// backward across the stacked rows — scaling from batch width, not threads,
// so it holds on a single-core box too. Gated in scripts/bench_check.py.
void BM_FleetBatchedPlanThroughput(benchmark::State& state) {
  fleet_plan_throughput(state, static_cast<std::size_t>(state.range(0)),
                        /*batch_plans=*/true);
}
BENCHMARK(BM_FleetBatchedPlanThroughput)
    ->Arg(1)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

// One forecast-gated control tick past the warm-up window: observe the new
// total, predict at the horizon, scale the vector. This is the per-tick
// cost forecast mode adds on top of plan() — gated in
// scripts/bench_check.py so it stays control-loop-cheap.
void BM_ForecastStep(benchmark::State& state) {
  forecast::ForecastGate gate{std::make_shared<forecast::HoltWinters>(),
                              forecast::ForecastGateConfig{}};
  std::vector<Qps> observed{60.0, 30.0, 10.0};
  Rng rng{17};
  std::vector<double> drift;
  for (int i = 0; i < 1024; ++i) drift.push_back(rng.uniform(55.0, 70.0));
  for (std::size_t i = 0; i < 64; ++i) {  // warm past the not-ready window
    observed[0] = drift[i];
    benchmark::DoNotOptimize(gate.plan_qps(observed));
  }
  std::size_t i = 64;
  for (auto _ : state) {
    observed[0] = drift[i++ & 1023];
    benchmark::DoNotOptimize(gate.plan_qps(observed));
  }
  state.counters["predictions"] = static_cast<double>(gate.predictions());
  state.counters["fallbacks"] = static_cast<double>(gate.fallbacks());
}
BENCHMARK(BM_ForecastStep);

void BM_Percentile(benchmark::State& state) {
  Rng rng{7};
  std::vector<double> v;
  for (int i = 0; i < 10000; ++i) v.push_back(rng.uniform());
  for (auto _ : state) {
    benchmark::DoNotOptimize(percentile(v, 99.0));
  }
}
BENCHMARK(BM_Percentile);

// -- telemetry layer ---------------------------------------------------------

void BM_LogHistogramRecord(benchmark::State& state) {
  telemetry::LogHistogram h;
  Rng rng{11};
  std::vector<double> vals;
  for (int i = 0; i < 1024; ++i) vals.push_back(rng.uniform(0.1, 900.0));
  std::size_t i = 0;
  for (auto _ : state) {
    h.record(vals[i++ & 1023]);
  }
  benchmark::DoNotOptimize(h.total());
}
BENCHMARK(BM_LogHistogramRecord);

void BM_LogHistogramPercentile(benchmark::State& state) {
  telemetry::LogHistogram h;
  Rng rng{11};
  for (int i = 0; i < 10000; ++i) h.record(rng.uniform(0.1, 900.0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(h.percentile(99.0));
  }
}
BENCHMARK(BM_LogHistogramPercentile);

void BM_ScopedTimerDisabled(benchmark::State& state) {
  for (auto _ : state) {
    telemetry::ScopedTimer t{nullptr};
    benchmark::DoNotOptimize(&t);
  }
}
BENCHMARK(BM_ScopedTimerDisabled);

void BM_ScopedTimerEnabled(benchmark::State& state) {
  telemetry::LogHistogram h;
  for (auto _ : state) {
    telemetry::ScopedTimer t{&h};
    benchmark::DoNotOptimize(&t);
  }
}
BENCHMARK(BM_ScopedTimerEnabled);

// -- tail-query strategies ---------------------------------------------------
//
// The control-tick pattern: a window of ~10k latency samples, one new
// sample per tick, then several rank queries over the same cutoff. The
// legacy implementation copied + sorted per *query*; the sorted cache sorts
// once per tick, and the telemetry histogram needs no sort at all.

constexpr int kWindowSamples = 10000;

trace::LatencyWindow filled_window() {
  trace::LatencyWindow win{1e18};
  Rng rng{13};
  for (int i = 0; i < kWindowSamples; ++i)
    win.add(static_cast<double>(i) * 0.01, rng.uniform(1.0, 500.0));
  return win;
}

// Legacy cost: one copy+sort for every rank queried.
void BM_TailQueryCopySortPerRank(benchmark::State& state) {
  Rng rng{13};
  std::vector<double> v;
  for (int i = 0; i < kWindowSamples; ++i) v.push_back(rng.uniform(1.0, 500.0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(percentile(v, 50.0));
    benchmark::DoNotOptimize(percentile(v, 95.0));
    benchmark::DoNotOptimize(percentile(v, 99.0));
  }
}
BENCHMARK(BM_TailQueryCopySortPerRank);

// Sorted-cache cost: the add invalidates, the first rank sorts, the rest
// hit the cache (FIRM's p50+p95 tick, the scraper's multi-rank export).
void BM_TailQueryWindowCached(benchmark::State& state) {
  trace::LatencyWindow win = filled_window();
  double t = kWindowSamples * 0.01;
  for (auto _ : state) {
    win.add(t, 42.0);
    t += 0.01;
    benchmark::DoNotOptimize(win.percentile_since(-1e300, 50.0));
    benchmark::DoNotOptimize(win.percentile_since(-1e300, 95.0));
    benchmark::DoNotOptimize(win.percentile_since(-1e300, 99.0));
  }
}
BENCHMARK(BM_TailQueryWindowCached);

// Telemetry-histogram cost: record is O(1), every rank query O(buckets).
void BM_TailQueryLogHistogram(benchmark::State& state) {
  telemetry::LogHistogram h;
  Rng rng{13};
  for (int i = 0; i < kWindowSamples; ++i) h.record(rng.uniform(1.0, 500.0));
  for (auto _ : state) {
    h.record(42.0);
    benchmark::DoNotOptimize(h.percentile(50.0));
    benchmark::DoNotOptimize(h.percentile(95.0));
    benchmark::DoNotOptimize(h.percentile(99.0));
  }
}
BENCHMARK(BM_TailQueryLogHistogram);

// -- parallel execution layer -------------------------------------------------
//
// Thread-scaling of the three parallel paths (DESIGN.md §3.7). The Arg is
// the pool size; the work decomposition (shards, sample streams, starts) is
// identical at every setting, so the times below measure pure speedup.

void BM_TrainScaling(benchmark::State& state) {
  set_global_threads(static_cast<std::size_t>(state.range(0)));
  gnn::Dataset data = tiny_dataset(6, 512);
  for (auto _ : state) {
    gnn::LatencyModel m{chain(6), gnn::MpnnConfig{}, 3};
    gnn::TrainConfig cfg;
    cfg.iterations = 20;
    cfg.batch_size = 256;
    cfg.shard_rows = 32;  // 8 shards per step
    cfg.eval_every = 100;
    m.fit(data, {}, cfg);
    benchmark::DoNotOptimize(&m);
  }
  set_global_threads(0);
}
BENCHMARK(BM_TrainScaling)->Arg(1)->Arg(2)->Arg(4)->Unit(benchmark::kMillisecond);

void BM_CollectScaling(benchmark::State& state) {
  set_global_threads(static_cast<std::size_t>(state.range(0)));
  auto topo = apps::bookinfo();
  sim::Cluster cluster = apps::make_cluster(topo, {.seed = 31});
  core::WorkloadAnalyzer analyzer{cluster.api_count(), cluster.service_count()};
  core::SampleCollectorConfig cfg;
  cfg.window = 2.0;
  cfg.warmup = 0.5;
  cfg.flush = 0.5;
  cfg.seed = 9;
  core::SearchSpace space;
  space.lo.assign(4, 500.0);
  space.hi.assign(4, 2000.0);
  std::vector<Qps> base{40.0};
  const auto factory = apps::make_cluster_factory(topo, {.seed = 31});
  for (auto _ : state) {
    core::SampleCollector collector{cluster, analyzer, cfg};
    benchmark::DoNotOptimize(
        collector.collect_sharded(16, space, base, 0.6, 1.0, factory));
  }
  set_global_threads(0);
}
BENCHMARK(BM_CollectScaling)->Arg(1)->Arg(2)->Arg(4)->Unit(benchmark::kMillisecond);

void BM_SolveScalingMultiStart(benchmark::State& state) {
  set_global_threads(static_cast<std::size_t>(state.range(0)));
  auto& model = shared_model();
  core::SolverConfig cfg;
  cfg.max_iterations = 300;
  cfg.multi_starts = 8;
  core::ConfigurationSolver solver{model, cfg};
  std::vector<double> w(6, 50.0);
  std::vector<Millicores> lo(6, 300.0);
  std::vector<Millicores> hi(6, 2000.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver.solve(w, 150.0, lo, hi));
  }
  set_global_threads(0);
}
BENCHMARK(BM_SolveScalingMultiStart)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond);

/// Mirrors every finished benchmark into the machine-readable result sink
/// while keeping the normal console table.
class CaptureReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (run.error_occurred) continue;
      std::string name = run.benchmark_name();
      // UseRealTime() suffixes "/real_time"; strip it so rows keep their
      // historical names and the bench_check gates stay stable.
      if (const auto pos = name.rfind("/real_time"); pos != std::string::npos &&
          pos == name.size() - 10)
        name.erase(pos);
      graf::bench::results().record(name, run.GetAdjustedRealTime(),
                                    benchmark::GetTimeUnitString(run.time_unit));
      for (const auto& [counter_name, counter] : run.counters)
        graf::bench::results().record(name + "." + counter_name, counter.value,
                                      "counter");
    }
    benchmark::ConsoleReporter::ReportRuns(runs);
  }
};

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  CaptureReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  graf::bench::write_bench_results("BENCH_perf.json");
  return 0;
}
