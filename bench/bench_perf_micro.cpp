// Performance micro-benchmarks (google-benchmark): the per-operation costs
// behind GRAF's control loop — GNN inference, a full solver run, simulator
// event throughput, and the numeric kernels.
#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "common/stats.h"
#include "core/configuration_solver.h"
#include "gnn/latency_model.h"
#include "nn/tensor.h"
#include "workload/open_loop.h"

namespace {

using namespace graf;

gnn::Dag chain(std::size_t n) {
  gnn::Dag d;
  for (std::size_t i = 0; i < n; ++i) d.add_node("s" + std::to_string(i));
  for (std::size_t i = 0; i + 1 < n; ++i)
    d.add_edge(static_cast<int>(i), static_cast<int>(i + 1));
  return d;
}

gnn::Dataset tiny_dataset(std::size_t nodes, std::size_t count) {
  Rng rng{1};
  gnn::Dataset out;
  for (std::size_t i = 0; i < count; ++i) {
    gnn::Sample s;
    for (std::size_t n = 0; n < nodes; ++n) {
      s.workload.push_back(rng.uniform(10.0, 100.0));
      s.quota.push_back(rng.uniform(300.0, 2000.0));
    }
    s.latency_ms = rng.uniform(50.0, 500.0);
    out.push_back(std::move(s));
  }
  return out;
}

gnn::LatencyModel& shared_model() {
  static gnn::LatencyModel model = [] {
    gnn::LatencyModel m{chain(6), gnn::MpnnConfig{}, 3};
    gnn::TrainConfig cfg;
    cfg.iterations = 50;
    cfg.batch_size = 64;
    cfg.eval_every = 50;
    m.fit(tiny_dataset(6, 512), {}, cfg);
    return m;
  }();
  return model;
}

void BM_GnnInference(benchmark::State& state) {
  auto& model = shared_model();
  std::vector<double> w(6, 50.0);
  std::vector<double> q(6, 1000.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.predict(w, q));
  }
}
BENCHMARK(BM_GnnInference);

void BM_SolverFullRun(benchmark::State& state) {
  auto& model = shared_model();
  core::SolverConfig cfg;
  cfg.max_iterations = static_cast<std::size_t>(state.range(0));
  core::ConfigurationSolver solver{model, cfg};
  std::vector<double> w(6, 50.0);
  std::vector<Millicores> lo(6, 300.0);
  std::vector<Millicores> hi(6, 2000.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver.solve(w, 150.0, lo, hi));
  }
}
BENCHMARK(BM_SolverFullRun)->Arg(100)->Arg(500);

void BM_SimulatorEventThroughput(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    auto topo = apps::online_boutique();
    sim::Cluster cluster = apps::make_cluster(topo, {.seed = 5});
    workload::OpenLoopConfig g;
    g.rate = workload::Schedule::constant(200.0);
    g.api_weights = topo.api_weights;
    workload::OpenLoopGenerator gen{cluster, g};
    gen.start(30.0);
    state.ResumeTiming();
    cluster.run_until(30.0);
    state.counters["events/s"] = benchmark::Counter(
        static_cast<double>(cluster.events().processed()),
        benchmark::Counter::kIsIterationInvariantRate);
  }
}
BENCHMARK(BM_SimulatorEventThroughput)->Unit(benchmark::kMillisecond);

void BM_Matmul(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  nn::Tensor a{n, n, 0.5};
  nn::Tensor b{n, n, 0.25};
  for (auto _ : state) {
    benchmark::DoNotOptimize(nn::matmul(a, b));
  }
}
BENCHMARK(BM_Matmul)->Arg(32)->Arg(128);

void BM_Percentile(benchmark::State& state) {
  Rng rng{7};
  std::vector<double> v;
  for (int i = 0; i < 10000; ++i) v.push_back(rng.uniform());
  for (auto _ : state) {
    benchmark::DoNotOptimize(percentile(v, 99.0));
  }
}
BENCHMARK(BM_Percentile);

}  // namespace

BENCHMARK_MAIN();
