// Figure 11: learning-curve comparison between GRAF's GNN and the same
// network without the MPNN stage (readout over raw node features). Paper:
// the no-MPNN variant's training loss can converge faster and even lower,
// but its held-out (test) loss stays worse — the MPNN generalizes.
#include <iostream>

#include "bench_common.h"
#include "common/table.h"
#include "core/latency_predictor.h"

int main() {
  using namespace graf;
  auto stack = bench::build_or_load_stack(bench::online_boutique_stack_config());

  gnn::TrainConfig tcfg;
  tcfg.iterations = 6000;
  tcfg.batch_size = 128;
  tcfg.lr = 1e-3;
  tcfg.lr_decay_every = 1500;
  tcfg.lr_decay_factor = 0.5;
  tcfg.eval_every = 500;
  tcfg.seed = 9;

  gnn::MpnnConfig with_cfg{};
  gnn::MpnnConfig without_cfg{};
  without_cfg.use_mpnn = false;

  core::LatencyPredictor with_mpnn{stack.dag, with_cfg, 7};
  auto hist_with = with_mpnn.train(stack.dataset, tcfg);

  core::LatencyPredictor without_mpnn{stack.dag, without_cfg, 7};
  auto hist_without = without_mpnn.train(stack.dataset, tcfg);

  Table table{"Figure 11: validation-loss learning curves"};
  table.header({"iteration", "GRAF (with MPNN)", "GRAF w/o MPNN"});
  for (std::size_t i = 0; i < hist_with.iteration.size(); ++i) {
    table.row({Table::integer(static_cast<long long>(hist_with.iteration[i])),
               Table::num(hist_with.val_loss[i], 4),
               Table::num(hist_without.val_loss[i], 4)});
  }
  table.print(std::cout);

  const auto acc_with = with_mpnn.model().evaluate_accuracy(with_mpnn.test_set());
  const auto acc_without =
      without_mpnn.model().evaluate_accuracy(without_mpnn.test_set());
  Table summary{"Figure 11 (summary): held-out accuracy"};
  summary.header({"model", "best val loss", "test MAPE (%)"});
  summary.row({"GRAF", Table::num(hist_with.best_val_loss, 4),
               Table::num(acc_with.mean_abs_pct_error, 1)});
  summary.row({"GRAF w/o MPNN", Table::num(hist_without.best_val_loss, 4),
               Table::num(acc_without.mean_abs_pct_error, 1)});
  summary.print(std::cout);
  std::cout << "Shape check (paper): the MPNN variant ends with the better\n"
               "held-out loss / accuracy.\n";
  return 0;
}
