// Figure 20 (§5.3 "Real workload demonstration"): replay an Azure-functions
// style per-minute invocation trace as a Locust user schedule for ~1900 s
// and compare GRAF with the tuned K8s HPA. Paper: both meet roughly the
// same tail latency, GRAF tracks the workload up AND down (the HPA's 5-min
// scale-down stabilization makes it shed instances slowly), ending with
// ~21% fewer net instances on average.
#include <iostream>

#include "autoscalers/k8s_hpa.h"
#include "bench_common.h"
#include "common/table.h"
#include "workload/azure_trace.h"
#include "workload/closed_loop.h"

namespace {

constexpr double kEnd = 1900.0;

struct ArmResult {
  std::vector<double> instances;  // sampled every 60 s
  double mean_instances = 0.0;
  double p95_ms = 0.0;
};

ArmResult run(graf::sim::Cluster& cluster, const graf::workload::Schedule& users,
              const std::vector<double>& weights) {
  using namespace graf;
  bench::LatencyRecorder rec;
  workload::ClosedLoopConfig g;
  g.users = users;
  g.api_weights = weights;
  g.seed = 71;
  g.on_complete = rec.hook();
  workload::ClosedLoopGenerator gen{cluster, g};
  gen.start(kEnd);

  ArmResult out;
  double total = 0.0;
  std::size_t ticks = 0;
  for (double t = 60.0; t <= kEnd; t += 60.0) {
    cluster.run_until(t);
    out.instances.push_back(cluster.total_target_instances());
    total += cluster.total_target_instances();
    ++ticks;
  }
  out.mean_instances = total / static_cast<double>(ticks);
  out.p95_ms = rec.percentile(95.0);
  return out;
}

}  // namespace

int main() {
  using namespace graf;
  auto stack = bench::build_or_load_stack(bench::online_boutique_stack_config());
  const double slo = stack.default_slo_ms;

  const workload::AzureTraceConfig trace_cfg{};
  const auto users = workload::azure_user_schedule(trace_cfg, 450.0, 1350.0);

  ArmResult graf_res;
  {
    sim::Cluster cluster = apps::make_cluster(stack.topo, {.seed = 73});
    auto rt = bench::make_graf_runtime(stack, slo);
    rt.autoscaler->attach(cluster, kEnd);
    graf_res = run(cluster, users, stack.topo.api_weights);
  }
  const double thr = bench::tune_hpa_threshold(stack.topo, 900.0, slo, 75);
  ArmResult hpa_res;
  {
    sim::Cluster cluster = apps::make_cluster(stack.topo, {.seed = 73});
    autoscalers::K8sHpa hpa{{.target_utilization = thr}};
    hpa.attach(cluster, kEnd);
    hpa_res = run(cluster, users, stack.topo.api_weights);
  }

  Table table{"Figure 20: instances under an Azure-trace user schedule"};
  table.header({"time (s)", "user threads", "GRAF instances", "HPA instances"});
  for (std::size_t i = 0; i < graf_res.instances.size(); i += 2) {
    const double t = 60.0 * static_cast<double>(i + 1);
    table.row({Table::num(t, 0), Table::num(users.at(t), 0),
               Table::num(graf_res.instances[i], 0),
               Table::num(hpa_res.instances[i], 0)});
  }
  table.print(std::cout);

  Table summary{"Figure 20 (summary)"};
  summary.header({"arm", "mean instances", "p95 latency (ms)"});
  summary.row({"GRAF", Table::num(graf_res.mean_instances, 1),
               Table::num(graf_res.p95_ms, 0)});
  summary.row({"K8s HPA (thr " + Table::num(thr, 2) + ")",
               Table::num(hpa_res.mean_instances, 1),
               Table::num(hpa_res.p95_ms, 0)});
  summary.print(std::cout);

  const double saving =
      100.0 * (1.0 - graf_res.mean_instances / hpa_res.mean_instances);
  std::cout << "Net instance saving: " << Table::num(saving, 1)
            << "% (paper: ~21% on average) at comparable tail latency.\n"
            << "Shape check (paper): GRAF scales down promptly after the 25-min\n"
               "workload drop; the HPA lingers for its 5-minute stabilization\n"
               "window.\n";
  return 0;
}
