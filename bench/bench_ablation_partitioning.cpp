// Ablation (paper §6 "Scalability of GRAF"): the suggested
// graph-partitioning remedy for the readout's linear growth in application
// size. Trains the monolithic latency model against partitioned variants on
// the cached 10-service Social Network dataset; reports parameter counts,
// training wall time, and held-out accuracy.
#include <chrono>
#include <iostream>

#include "bench_common.h"
#include "common/table.h"
#include "core/latency_predictor.h"
#include "gnn/partitioned_model.h"

int main() {
  using namespace graf;
  auto stack = bench::build_or_load_stack(bench::social_network_stack_config());

  auto split = core::split_dataset(stack.dataset, 0.15, 0.15, 77);

  gnn::TrainConfig tcfg;
  tcfg.iterations = 4000;
  tcfg.batch_size = 128;
  tcfg.lr = 1e-3;
  tcfg.lr_decay_every = 1000;
  tcfg.eval_every = 500;

  Table table{"Ablation: monolithic vs partitioned latency model (Social Network)"};
  table.header({"model", "partitions", "parameters", "train (s)",
                "test MAPE (%)", "best val loss"});

  {
    core::LatencyPredictor mono{stack.dag, gnn::MpnnConfig{}, 111};
    const auto t0 = std::chrono::steady_clock::now();
    auto hist = mono.model().fit(split.train, split.val, tcfg);
    const double secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
    const auto acc = mono.model().evaluate_accuracy(split.test);
    table.row({"monolithic", "1",
               Table::integer(static_cast<long long>(mono.model().param_count())),
               Table::num(secs, 1), Table::num(acc.mean_abs_pct_error, 1),
               Table::num(hist.best_val_loss, 4)});
  }
  for (std::size_t max_size : {5, 3}) {
    gnn::PartitionedLatencyModel part{stack.dag, gnn::MpnnConfig{}, max_size, 111};
    const auto t0 = std::chrono::steady_clock::now();
    auto hist = part.fit(split.train, split.val, tcfg);
    const double secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
    const auto acc = part.evaluate_accuracy(split.test);
    table.row({"partitioned (<=" + Table::integer(static_cast<long long>(max_size)) +
                   " nodes)",
               Table::integer(static_cast<long long>(part.partition_count())),
               Table::integer(static_cast<long long>(part.param_count())),
               Table::num(secs, 1), Table::num(acc.mean_abs_pct_error, 1),
               Table::num(hist.best_val_loss, 4)});
  }
  table.print(std::cout);
  std::cout << "Expectation (paper §6): partitioning trades a modest accuracy\n"
               "loss (cross-partition interactions are no longer modeled) for a\n"
               "readout whose size no longer grows with the application.\n";
  return 0;
}
