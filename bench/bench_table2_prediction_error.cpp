// Table 2: average absolute percentage error of the latency prediction
// model by 99%-tile-latency region, plus the overall signed error (the
// "over-estimate" column). Paper: 21-32% per region, +5.2% over-estimate.
//
// Region boundaries are scaled to this substrate's latency range (our
// simulated floor differs from the authors' testbed); the qualitative
// expectations are identical: better accuracy in the low-latency region
// (where SLOs live) and a small positive bias overall.
#include <iostream>

#include "bench_common.h"
#include "common/table.h"

int main() {
  using namespace graf;
  auto stack = bench::build_or_load_stack(bench::online_boutique_stack_config());

  const double f = stack.floor_p99;  // region boundaries relative to the floor
  std::vector<std::pair<double, double>> regions{
      {0.0, 1.5 * f}, {1.5 * f, 3.0 * f}, {0.0, 6.0 * f}, {0.0, 24.0 * f}};

  Table table{"Table 2: prediction error by sampled 99%-tile latency region"};
  table.header({"region", "mean |pct error| (%)", "test samples"});
  for (auto rows = stack.predictor->accuracy_by_region(regions);
       const auto& r : rows) {
    table.row({r.region, Table::num(r.mean_abs_pct_error, 1),
               Table::integer(static_cast<long long>(r.count))});
  }
  table.print(std::cout);

  const double signed_err = stack.predictor->overall_signed_error();
  std::cout << "Overall signed error (over-estimate): "
            << Table::num(signed_err, 1)
            << "% (paper: +5.2%; positive = safe over-estimation)\n";
  std::cout << "Shape check (paper): lowest-latency region has the best accuracy\n"
               "and the overall bias is a small over-estimate.\n";
  return 0;
}
