// Figure 18 (§5.2 "Scaling workload"): total instances used by GRAF vs the
// tuned Kubernetes HPA across simulated user populations, plus the saved
// instance count. Paper: GRAF matches the HPA's tail latency while the
// saving grows roughly proportionally with the workload — the resource
// controller's workload-scaling trick (§3.6) extrapolates the trained model
// to workloads far beyond the sampled region.
#include <iostream>

#include "autoscalers/k8s_hpa.h"
#include "bench_common.h"
#include "common/table.h"

int main() {
  using namespace graf;
  auto stack = bench::build_or_load_stack(bench::online_boutique_stack_config());
  const double slo = stack.default_slo_ms;

  // One tuned threshold applied across the whole sweep (the paper tunes a
  // single global threshold per SLO, §5.3).
  const double thr = bench::tune_hpa_threshold(stack.topo, 1250.0, slo, 55);
  std::cerr << "[bench] tuned HPA threshold: " << thr << "\n";

  Table table{"Figure 18: total instances vs simulated users (SLO " +
              Table::num(slo, 0) + " ms)"};
  table.header({"users", "GRAF instances", "GRAF p99 (ms)", "HPA instances",
                "HPA p99 (ms)", "saved instances"});

  for (double users : {500.0, 900.0, 1250.0, 1900.0, 2600.0}) {
    bench::SteadyStateResult graf_res;
    {
      sim::Cluster cluster = apps::make_cluster(stack.topo, {.seed = 51});
      auto rt = bench::make_graf_runtime(stack, slo);
      rt.autoscaler->attach(cluster, 1e9);
      graf_res = bench::measure_steady_state(cluster, users, stack.topo.api_weights,
                                             240.0, 120.0, 57);
    }
    bench::SteadyStateResult hpa_res;
    {
      sim::Cluster cluster = apps::make_cluster(stack.topo, {.seed = 51});
      autoscalers::K8sHpa hpa{{.target_utilization = thr}};
      hpa.attach(cluster, 1e9);
      hpa_res = bench::measure_steady_state(cluster, users, stack.topo.api_weights,
                                            240.0, 120.0, 57);
    }
    table.row({Table::num(users, 0), Table::num(graf_res.mean_total_instances, 1),
               Table::num(graf_res.p99_ms, 0),
               Table::num(hpa_res.mean_total_instances, 1),
               Table::num(hpa_res.p99_ms, 0),
               Table::num(hpa_res.mean_total_instances - graf_res.mean_total_instances,
                          1)});
  }
  table.print(std::cout);
  std::cout << "Shape check (paper): the saved-instances column grows with the\n"
               "workload while GRAF's tail latency stays at the SLO.\n";
  return 0;
}
