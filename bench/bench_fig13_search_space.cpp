// Figure 13: Algorithm 1's reduced per-service quota search space against
// the original space, for Online Boutique. Paper: exploration shrinks to
// 0.00027x of the original volume (their space has wider per-service
// ranges); the qualitative claim is a reduction of orders of magnitude.
#include <iostream>

#include "bench_common.h"
#include "common/table.h"
#include "core/sample_collector.h"

int main() {
  using namespace graf;
  auto stack = bench::build_or_load_stack(bench::online_boutique_stack_config());

  const core::SampleCollectorConfig scfg = bench::stack_collector_config();
  Table table{"Figure 13: reduced vs original search space (Online Boutique)"};
  table.header({"service (MSi)", "original lo", "original hi", "reduced lo",
                "reduced hi", "fraction kept"});
  for (std::size_t s = 0; s < stack.topo.service_count(); ++s) {
    const double kept = (stack.space.hi[s] - stack.space.lo[s]) /
                        (scfg.quota_hi - scfg.quota_floor);
    table.row({stack.topo.services[s].name, Table::num(scfg.quota_floor, 0),
               Table::num(scfg.quota_hi, 0), Table::num(stack.space.lo[s], 0),
               Table::num(stack.space.hi[s], 0), Table::num(kept, 3)});
  }
  table.print(std::cout);

  const double ratio = stack.space.volume_ratio(scfg.quota_floor, scfg.quota_hi);
  std::cout << "Total volume ratio (reduced/original): " << ratio
            << " (paper: 2.7e-4 on their wider original space)\n";
  return 0;
}
