// Ablation (paper §5.1 "Efficient Sample Collection"): what does the
// state-aware sample collector's reduced search space buy over naive
// exploration at an equal sample budget? Collects the same number of
// samples (a) inside the Algorithm-1 box and (b) uniformly over the full
// quota space, trains identical models, and evaluates both on a held-out
// set drawn from the reduced region — the region the solver actually
// operates in.
#include <iostream>

#include "apps/catalog.h"
#include "bench_common.h"
#include "common/table.h"
#include "core/latency_predictor.h"
#include "core/sample_collector.h"
#include "core/workload_analyzer.h"

int main() {
  using namespace graf;
  auto topo = apps::bookinfo();  // small app so the double collection is quick
  const std::vector<Qps> base{60.0};
  const double slo = 200.0;
  const std::size_t budget = 1500;

  sim::Cluster cluster = apps::make_cluster(topo, {.seed = 99});
  core::WorkloadAnalyzer analyzer{cluster.api_count(), cluster.service_count()};
  core::SampleCollectorConfig scfg;
  scfg.window = 8.0;
  core::SampleCollector collector{cluster, analyzer, scfg};

  std::cerr << "[bench] Algorithm 1 search-space reduction...\n";
  const auto reduced = collector.reduce_search_space(base, slo);
  core::SearchSpace full;
  full.lo.assign(topo.service_count(), scfg.quota_floor);
  full.hi.assign(topo.service_count(), scfg.quota_hi);

  std::cerr << "[bench] collecting " << budget << " state-aware samples...\n";
  auto smart = collector.collect(budget, reduced, base, 0.6, 1.1);
  std::cerr << "[bench] collecting " << budget << " naive samples...\n";
  auto naive = collector.collect(budget, full, base, 0.6, 1.1);
  // Common test set from the operating region.
  std::cerr << "[bench] collecting the held-out test set...\n";
  auto test = collector.collect(400, reduced, base, 0.6, 1.1);

  gnn::TrainConfig tcfg;
  tcfg.iterations = 4000;
  tcfg.batch_size = 128;
  tcfg.lr = 1e-3;
  tcfg.lr_decay_every = 1000;
  tcfg.eval_every = 500;

  const auto dag = apps::make_dag(topo);
  Table table{"Ablation: state-aware vs naive sample collection (" +
              Table::integer(static_cast<long long>(budget)) + " samples each)"};
  table.header({"collector", "volume explored", "test MAPE (%)", "signed (%)"});

  {
    core::LatencyPredictor pred{dag, gnn::MpnnConfig{}, 101};
    pred.train(smart, tcfg, 0.15, 0.0);
    const auto acc = pred.model().evaluate_accuracy(test);
    table.row({"state-aware (Algorithm 1)",
               Table::num(reduced.volume_ratio(scfg.quota_floor, scfg.quota_hi), 4),
               Table::num(acc.mean_abs_pct_error, 1),
               Table::num(acc.mean_pct_error, 1)});
  }
  {
    core::LatencyPredictor pred{dag, gnn::MpnnConfig{}, 101};
    pred.train(naive, tcfg, 0.15, 0.0);
    const auto acc = pred.model().evaluate_accuracy(test);
    table.row({"naive (full space)", "1.0000",
               Table::num(acc.mean_abs_pct_error, 1),
               Table::num(acc.mean_pct_error, 1)});
  }
  table.print(std::cout);
  std::cout << "Expectation (paper §5.1): concentrating the identical budget in\n"
               "the reduced region fits the operating region better; the naive\n"
               "collector wastes samples on hopeless corners.\n";
  return 0;
}
