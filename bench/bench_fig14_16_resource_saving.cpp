// Figures 14, 15, 16 (§5.3 "Resource saving"): steady-state CPU quota of
// GRAF vs the fine-tuned Kubernetes HPA at equal tail-latency targets, for
// Online Boutique and Social Network.
//
// Paper shape: GRAF meets the same SLO with 14-19% less total CPU
// (Fig. 14), achieved by shifting quota toward the latency-sensitive
// services (recommendation/shipping in Online Boutique, Fig. 15) and away
// from the cheap ones.
#include <iostream>

#include "autoscalers/k8s_hpa.h"
#include "bench_common.h"
#include "common/table.h"

namespace {

struct AppResult {
  std::string app;
  double slo = 0.0;
  double hpa_threshold = 0.0;
  graf::bench::SteadyStateResult graf;
  graf::bench::SteadyStateResult hpa;
  std::vector<std::string> service_names;
  std::vector<double> unit_quota;
};

AppResult evaluate_app(graf::bench::TrainedStack& stack, double users) {
  using namespace graf;
  AppResult out;
  out.app = stack.topo.name;
  out.slo = stack.default_slo_ms;
  for (const auto& svc : stack.topo.services) {
    out.service_names.push_back(svc.name);
    out.unit_quota.push_back(svc.unit_quota);
  }

  {
    sim::Cluster cluster = apps::make_cluster(stack.topo, {.seed = 31});
    auto rt = bench::make_graf_runtime(stack, stack.default_slo_ms);
    rt.autoscaler->attach(cluster, 1e9);
    out.graf = bench::measure_steady_state(cluster, users, stack.topo.api_weights,
                                           240.0, 120.0, 33);
  }
  {
    out.hpa_threshold =
        bench::tune_hpa_threshold(stack.topo, users, stack.default_slo_ms, 35);
    sim::Cluster cluster = apps::make_cluster(stack.topo, {.seed = 31});
    autoscalers::K8sHpa hpa{{.target_utilization = out.hpa_threshold}};
    hpa.attach(cluster, 1e9);
    out.hpa = bench::measure_steady_state(cluster, users, stack.topo.api_weights,
                                          240.0, 120.0, 33);
  }
  return out;
}

}  // namespace

int main() {
  using namespace graf;

  auto ob = bench::build_or_load_stack(bench::online_boutique_stack_config());
  auto sn = bench::build_or_load_stack(bench::social_network_stack_config());

  // Closed-loop populations sized well above the training reference so
  // replica counts are large enough for per-service differences to matter;
  // GRAF's workload-scaling path (§3.6) covers the extrapolation.
  AppResult ob_res = evaluate_app(ob, 1250.0);
  AppResult sn_res = evaluate_app(sn, 1250.0);

  Table fig14{"Figure 14: total CPU quota at equal latency SLO"};
  fig14.header({"application", "SLO (ms)", "GRAF (mc)", "K8s HPA (mc)",
                "saving (%)", "GRAF p99 (ms)", "HPA p99 (ms)", "HPA thr"});
  for (const AppResult* r : {&ob_res, &sn_res}) {
    const double saving =
        100.0 * (1.0 - r->graf.mean_total_quota_mc / r->hpa.mean_total_quota_mc);
    fig14.row({r->app, Table::num(r->slo, 0),
               Table::num(r->graf.mean_total_quota_mc, 0),
               Table::num(r->hpa.mean_total_quota_mc, 0), Table::num(saving, 1),
               Table::num(r->graf.p99_ms, 0), Table::num(r->hpa.p99_ms, 0),
               Table::num(r->hpa_threshold, 2)});
  }
  fig14.print(std::cout);

  for (const AppResult* r : {&ob_res, &sn_res}) {
    Table per{std::string{r->app == "online-boutique" ? "Figure 15" : "Figure 16"} +
              ": per-service CPU quota (" + r->app + ")"};
    per.header({"service", "GRAF (mc)", "K8s HPA (mc)"});
    for (std::size_t s = 0; s < r->service_names.size(); ++s) {
      per.row({r->service_names[s],
               Table::num(r->graf.mean_instances_per_service[s] * r->unit_quota[s], 0),
               Table::num(r->hpa.mean_instances_per_service[s] * r->unit_quota[s], 0)});
    }
    per.print(std::cout);
  }
  std::cout << "Shape check (paper): GRAF saves 14-19% total CPU at the same tail\n"
               "latency, spending more on latency-critical services and less on\n"
               "the rest.\n";
  return 0;
}
