// Figure 12: heat-map of the configuration solver's loss (Eq. 5) restricted
// to two services' resources, the rest held at the solver's optimum. Paper:
// the landscape is smooth with a single valley along the SLO-feasibility
// boundary, which is why plain gradient descent finds the optimum.
#include <iostream>

#include "bench_common.h"
#include "common/table.h"

int main() {
  using namespace graf;
  auto stack = bench::build_or_load_stack(bench::online_boutique_stack_config());
  auto rt = bench::make_graf_runtime(stack, stack.default_slo_ms);

  const auto workload = stack.node_workload(stack.base_qps);
  auto solved = rt.solver->solve(workload, stack.default_slo_ms, stack.space.lo,
                                 stack.space.hi);

  // Vary recommendation (idx 4) and cart (idx 2), the two most
  // latency-sensitive services of Online Boutique.
  const int a = 4;
  const int b = 2;
  constexpr int kGrid = 9;

  Table table{"Figure 12: Eq.5 loss over (recommendation, cart) quota"};
  std::vector<std::string> hdr{"rec\\cart (mc)"};
  for (int j = 0; j < kGrid; ++j) {
    const double qb = stack.space.lo[b] +
                      (stack.space.hi[b] - stack.space.lo[b]) * j / (kGrid - 1.0);
    hdr.push_back(Table::num(qb, 0));
  }
  table.header(hdr);

  double min_loss = 1e300;
  std::pair<int, int> argmin{0, 0};
  for (int i = 0; i < kGrid; ++i) {
    const double qa = stack.space.lo[a] +
                      (stack.space.hi[a] - stack.space.lo[a]) * i / (kGrid - 1.0);
    std::vector<std::string> row{Table::num(qa, 0)};
    for (int j = 0; j < kGrid; ++j) {
      const double qb = stack.space.lo[b] +
                        (stack.space.hi[b] - stack.space.lo[b]) * j / (kGrid - 1.0);
      auto quota = solved.quota;
      quota[a] = qa;
      quota[b] = qb;
      const double loss =
          rt.solver->loss_at(workload, stack.default_slo_ms, quota, stack.space.hi);
      if (loss < min_loss) {
        min_loss = loss;
        argmin = {i, j};
      }
      row.push_back(Table::num(loss, 3));
    }
    table.row(row);
  }
  table.print(std::cout);

  std::cout << "Solver optimum: rec=" << Table::num(solved.quota[a], 0)
            << " mc, cart=" << Table::num(solved.quota[b], 0)
            << " mc (predicted p99 " << Table::num(solved.predicted_ms, 0)
            << " ms at SLO " << Table::num(stack.default_slo_ms, 0) << " ms)\n";
  std::cout << "Grid minimum at rec index " << argmin.first << ", cart index "
            << argmin.second << " (loss " << Table::num(min_loss, 3) << ")\n";
  std::cout << "Shape check (paper): loss rises smoothly toward the SLO-violating\n"
               "corner (low quotas) and grows linearly with total quota elsewhere —\n"
               "a single valley, friendly to gradient descent.\n";
  return 0;
}
