#include "bench_common.h"

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>

#include "autoscalers/k8s_hpa.h"
#include "common/stats.h"
#include "workload/closed_loop.h"
#include "workload/open_loop.h"

namespace graf::bench {

namespace fs = std::filesystem;

std::string artifacts_dir() {
  if (const char* env = std::getenv("GRAF_ARTIFACTS")) return env;
  return "graf_artifacts";
}

std::string bench_out_path(const std::string& filename) {
  if (const char* env = std::getenv("GRAF_BENCH_OUT"))
    return (fs::path{env} / filename).string();
  return filename;
}

telemetry::BenchExporter& results() {
  static telemetry::BenchExporter exporter;
  return exporter;
}

bool write_bench_results(const std::string& filename) {
  if (results().empty()) return false;
  const std::string path = bench_out_path(filename);
  // Several binaries share one BENCH file (perf micro, chaos surge, ...):
  // fold the rows already on disk in first — fresh same-name rows win, rows
  // from other binaries survive the rewrite.
  results().merge_json_file(path);
  if (!results().write_json_file(path)) {
    std::cerr << "bench: failed to write " << path << "\n";
    return false;
  }
  std::cerr << "bench: wrote " << results().rows().size() << " results to " << path
            << "\n";
  return true;
}

bool full_scale() {
  const char* env = std::getenv("GRAF_SCALE");
  return env != nullptr && std::string{env} == "full";
}

std::vector<double> TrainedStack::node_workload(const std::vector<Qps>& api_qps) const {
  std::vector<double> l(topo.service_count(), 0.0);
  for (std::size_t a = 0; a < api_qps.size(); ++a)
    for (std::size_t s = 0; s < l.size(); ++s) l[s] += api_qps[a] * fanout[a][s];
  return l;
}

StackConfig online_boutique_stack_config() {
  // ~480 qps total front-end traffic: each service runs 3-15 one-core
  // replicas, the regime where per-service allocation differences matter
  // (the paper's Figures 14-18 operate at comparable replica counts).
  StackConfig cfg{.topo = apps::online_boutique(),
                  .base_qps = {168.0, 216.0, 96.0},
                  .closed_loop_collection = true};  // paper: Locust for OB
  if (full_scale()) {
    cfg.samples = 20000;
    cfg.train_iterations = 70000;
  }
  return cfg;
}

StackConfig social_network_stack_config() {
  StackConfig cfg{.topo = apps::social_network(), .base_qps = {480.0}};
  if (full_scale()) {
    cfg.samples = 20000;
    cfg.train_iterations = 70000;
  }
  return cfg;
}

core::SampleCollectorConfig stack_collector_config() {
  core::SampleCollectorConfig scfg;
  scfg.window = 12.0;
  scfg.quota_hi = 8000.0;  // "sufficient CPU" at the ~480-qps scale
  scfg.quota_floor = 200.0;
  scfg.step = 300.0;
  return scfg;
}

namespace {

gnn::TrainConfig bench_train_config(std::size_t iterations, std::uint64_t seed) {
  gnn::TrainConfig cfg;
  cfg.iterations = iterations;
  cfg.batch_size = 128;
  cfg.lr = 1e-3;
  cfg.lr_decay_every = iterations / 4;
  cfg.lr_decay_factor = 0.5;
  cfg.eval_every = 500;
  cfg.theta_under = 0.3;
  cfg.theta_over = 0.1;
  cfg.seed = seed;
  return cfg;
}

std::string meta_path(const std::string& app) {
  return artifacts_dir() + "/" + app + "_stack.txt";
}
std::string dataset_path(const std::string& app) {
  return artifacts_dir() + "/" + app + "_dataset.txt";
}
std::string model_path(const std::string& app) {
  return artifacts_dir() + "/" + app + "_model.txt";
}

bool load_meta(TrainedStack& st) {
  std::ifstream is{meta_path(st.topo.name)};
  if (!is) return false;
  std::size_t apis = 0;
  std::size_t services = 0;
  if (!(is >> apis >> services)) return false;
  if (apis != st.topo.apis.size() || services != st.topo.service_count()) return false;
  st.base_qps.resize(apis);
  for (auto& v : st.base_qps)
    if (!(is >> v)) return false;
  if (!(is >> st.floor_p99 >> st.default_slo_ms)) return false;
  st.space.lo.resize(services);
  st.space.hi.resize(services);
  for (auto& v : st.space.lo)
    if (!(is >> v)) return false;
  for (auto& v : st.space.hi)
    if (!(is >> v)) return false;
  st.fanout.assign(apis, std::vector<double>(services, 0.0));
  for (auto& row : st.fanout)
    for (auto& v : row)
      if (!(is >> v)) return false;
  return true;
}

void save_meta(const TrainedStack& st) {
  std::ofstream os{meta_path(st.topo.name)};
  os.precision(17);
  os << st.topo.apis.size() << ' ' << st.topo.service_count() << '\n';
  for (double v : st.base_qps) os << v << ' ';
  os << '\n' << st.floor_p99 << ' ' << st.default_slo_ms << '\n';
  for (double v : st.space.lo) os << v << ' ';
  os << '\n';
  for (double v : st.space.hi) os << v << ' ';
  os << '\n';
  for (const auto& row : st.fanout) {
    for (double v : row) os << v << ' ';
    os << '\n';
  }
}

}  // namespace

TrainedStack build_or_load_stack(const StackConfig& cfg) {
  fs::create_directories(artifacts_dir());
  TrainedStack st;
  st.topo = cfg.topo;
  st.dag = apps::make_dag(cfg.topo);
  st.base_qps = cfg.base_qps;

  st.predictor = std::make_unique<core::LatencyPredictor>(st.dag, gnn::MpnnConfig{},
                                                          cfg.seed + 100);

  const std::string app = cfg.topo.name;
  if (load_meta(st) && fs::exists(dataset_path(app)) && fs::exists(model_path(app))) {
    st.dataset = core::load_dataset(dataset_path(app));
    // Restore the train/val/test split deterministically (same seed as the
    // original training run) so accuracy reports match.
    st.predictor->set_split(
        core::split_dataset(st.dataset, 0.15, 0.15, cfg.seed));
    if (st.predictor->load_model(model_path(app))) {
      std::cerr << "[bench] loaded cached stack for " << app << " ("
                << st.dataset.size() << " samples)\n";
      return st;
    }
  }

  std::cerr << "[bench] building stack for " << app << " (samples=" << cfg.samples
            << ", iters=" << cfg.train_iterations << ") ...\n";
  sim::Cluster cluster = apps::make_cluster(cfg.topo, {.seed = cfg.seed});
  core::WorkloadAnalyzer analyzer{cluster.api_count(), cluster.service_count()};
  core::SampleCollectorConfig scfg = stack_collector_config();
  scfg.seed = cfg.seed + 7;
  scfg.closed_loop = cfg.closed_loop_collection;
  core::SampleCollector collector{cluster, analyzer, scfg};

  // Floor: every service at "sufficient CPU".
  for (int s = 0; s < static_cast<int>(cluster.service_count()); ++s)
    cluster.apply_total_quota(s, scfg.quota_hi, scfg.max_per_instance);
  st.floor_p99 = collector.measure_tail(cfg.base_qps, 20.0, 99.0);
  st.default_slo_ms = st.floor_p99 * cfg.slo_floor_factor;
  std::cerr << "[bench] floor p99 = " << st.floor_p99 << " ms, default SLO = "
            << st.default_slo_ms << " ms\n";

  st.space = collector.reduce_search_space(cfg.base_qps, st.default_slo_ms);
  st.dataset = collector.collect(cfg.samples, st.space, cfg.base_qps, 0.5, 1.1);
  st.fanout = analyzer.fanout();
  std::cerr << "[bench] collected " << st.dataset.size() << " samples\n";

  auto tcfg = bench_train_config(cfg.train_iterations, cfg.seed);
  auto hist = st.predictor->train(st.dataset, tcfg);
  const auto acc = st.predictor->model().evaluate_accuracy(st.predictor->test_set());
  std::cerr << "[bench] trained: best val loss " << hist.best_val_loss << ", test MAPE "
            << acc.mean_abs_pct_error << "%, signed " << acc.mean_pct_error << "%\n";

  core::save_dataset(dataset_path(app), st.dataset);
  st.predictor->save_model(model_path(app));
  save_meta(st);
  return st;
}

GrafRuntime make_graf_runtime(TrainedStack& stack, double slo_ms,
                              core::GrafControllerConfig cfg) {
  GrafRuntime rt;
  rt.analyzer = std::make_unique<core::WorkloadAnalyzer>(stack.topo.apis.size(),
                                                         stack.topo.service_count());
  rt.analyzer->set_fanout(stack.fanout);
  rt.solver = std::make_unique<core::ConfigurationSolver>(stack.predictor->model());
  std::vector<Millicores> units;
  units.reserve(stack.topo.service_count());
  for (const auto& svc : stack.topo.services) units.push_back(svc.unit_quota);
  rt.controller = std::make_unique<core::ResourceController>(
      stack.predictor->model(), *rt.solver, *rt.analyzer, stack.space.lo,
      stack.space.hi, units);
  // The training reference must come from the *training* split, but per-node
  // maxima over the full dataset are equivalent for scaling purposes.
  rt.controller->set_training_reference(stack.dataset);
  // Let the planner clamp (and re-predict) at each service's replica cap
  // instead of Service::scale_to clamping silently after the fact.
  std::vector<int> max_inst;
  max_inst.reserve(stack.topo.service_count());
  for (const auto& svc : stack.topo.services) max_inst.push_back(svc.max_instances);
  rt.controller->set_max_instances(std::move(max_inst));
  cfg.slo_ms = slo_ms;
  rt.autoscaler = std::make_unique<core::GrafController>(*rt.controller, cfg);
  return rt;
}

sim::Cluster::CompletionFn LatencyRecorder::hook() {
  return [this](const trace::RequestTrace& t) {
    if (t.ok) {
      latencies_.push_back(t.e2e_ms());
    } else {
      ++failures_;
    }
  };
}

double LatencyRecorder::percentile(double rank) const {
  return graf::percentile(latencies_, rank);
}

double tune_hpa_threshold(const apps::Topology& topo, double users, double slo_ms,
                          std::uint64_t seed) {
  // Walk thresholds from loose (cheap) to tight (expensive); return the
  // loosest one meeting the SLO in steady state. Values above 1.0 are legal:
  // utilization is measured against the Kubernetes *request* (half the
  // limit), so a 1.2 target still leaves 40% burst headroom.
  const double thresholds[] = {1.6, 1.4, 1.2, 1.0, 0.9, 0.8, 0.7,
                               0.6, 0.5, 0.4, 0.3, 0.2, 0.15, 0.1};
  for (double thr : thresholds) {
    sim::Cluster cluster = apps::make_cluster(topo, {.seed = seed});
    autoscalers::K8sHpa hpa{{.target_utilization = thr}};
    hpa.attach(cluster, 1e9);
    auto res = measure_steady_state(cluster, users, topo.api_weights, 240.0, 60.0,
                                    seed + 1);
    if (res.p99_ms <= slo_ms) return thr;
  }
  return 0.1;
}

SteadyStateResult measure_steady_state(sim::Cluster& cluster, double users,
                                       const std::vector<double>& api_weights,
                                       Seconds settle, Seconds measure,
                                       std::uint64_t seed) {
  workload::ClosedLoopConfig gcfg;
  gcfg.users = workload::Schedule::constant(users);
  gcfg.api_weights = api_weights;
  gcfg.seed = seed;
  workload::ClosedLoopGenerator gen{cluster, gcfg};
  const Seconds t_end = cluster.now() + settle + measure;
  gen.start(t_end);
  cluster.run_until(cluster.now() + settle);

  SteadyStateResult out;
  out.mean_instances_per_service.assign(cluster.service_count(), 0.0);
  const Seconds measure_from = cluster.now();
  // Sample instance counts once per second while measuring.
  std::size_t ticks = 0;
  while (cluster.now() < t_end) {
    cluster.run_for(1.0);
    ++ticks;
    out.mean_total_instances += cluster.total_ready_instances();
    out.mean_total_quota_mc += cluster.total_quota();
    for (std::size_t s = 0; s < cluster.service_count(); ++s)
      out.mean_instances_per_service[s] +=
          cluster.service(static_cast<int>(s)).ready_count();
  }
  if (ticks > 0) {
    out.mean_total_instances /= static_cast<double>(ticks);
    out.mean_total_quota_mc /= static_cast<double>(ticks);
    for (auto& v : out.mean_instances_per_service) v /= static_cast<double>(ticks);
  }
  auto& e2e = cluster.e2e_latency_all();
  if (e2e.count_since(measure_from) >= 20) {
    out.p99_ms = e2e.percentile_since(measure_from, 99.0);
    out.p95_ms = e2e.percentile_since(measure_from, 95.0);
  } else {
    out.p99_ms = out.p95_ms = 1e9;  // effectively "SLO violated"
  }
  return out;
}

}  // namespace graf::bench
