// Figure 1: time to create 1/2/4/8/16 microservice instances at once on a
// single worker node. Paper measurements: 5.5 / 8.7 / 12.5 / 23.6 / 45.6 s.
#include <algorithm>
#include <iostream>
#include <vector>

#include "bench_common.h"
#include "common/table.h"
#include "sim/deployment.h"
#include "sim/event_queue.h"

int main() {
  using namespace graf;

  Table table{"Figure 1: time to create N instances at once (single node)"};
  table.header({"instances", "simulated (s)", "paper (s)", "closed form (s)"});

  const int batches[] = {1, 2, 4, 8, 16};
  const double paper[] = {5.5, 8.7, 12.5, 23.6, 45.6};

  for (int i = 0; i < 5; ++i) {
    sim::EventQueue q;
    sim::Deployment dep{q, {.nodes = 1}};
    std::vector<double> ready;
    for (int n = 0; n < batches[i]; ++n)
      dep.request_creation([&] { ready.push_back(q.now()); });
    q.run_all();
    const double batch_time = *std::max_element(ready.begin(), ready.end());
    table.row({Table::integer(batches[i]), Table::num(batch_time, 1),
               Table::num(paper[i], 1),
               Table::num(dep.batch_completion_time(batches[i]), 1)});
  }
  table.print(std::cout);
  return 0;
}
