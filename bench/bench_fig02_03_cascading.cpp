// Figures 2 and 3 (§2.1 motivation): a 300-qps cart-page flood against
// Online Boutique, comparing the manual "Proactive" arm (all services
// scaled at once from per-service demand knowledge) with the Kubernetes
// autoscaler at utilization thresholds 10/25/50 %.
//
// Figure 2 plots the total number of instances over time; Figure 3 the
// 90/95/99 %-tile end-to-end latency over the surge. Paper shape: Proactive
// reaches its (much smaller) instance count quickly and keeps tail latency
// an order of magnitude lower than every HPA setting; lowering the HPA
// threshold trades a latency improvement for a large instance blow-up.
#include <iostream>
#include <string>
#include <vector>

#include "autoscalers/k8s_hpa.h"
#include "autoscalers/proactive_oracle.h"
#include "bench_common.h"
#include "common/table.h"
#include "core/workload_analyzer.h"
#include "workload/open_loop.h"

namespace {

constexpr double kSurgeQps = 300.0;
constexpr double kSurgeAt = 30.0;
constexpr double kEnd = 350.0;

struct ArmResult {
  std::string name;
  std::vector<std::pair<double, int>> instances_series;  // (t, total)
  int final_instances = 0;
  double p90 = 0.0, p95 = 0.0, p99 = 0.0;
  std::size_t completed = 0, failed = 0;
};

ArmResult run_arm(const std::string& name, graf::autoscalers::Autoscaler* scaler,
                  const graf::autoscalers::ProactiveOracle* manual,
                  std::uint64_t seed) {
  using namespace graf;
  auto topo = apps::online_boutique();
  sim::Cluster cluster = apps::make_cluster(topo, {.seed = seed});
  if (scaler != nullptr) scaler->attach(cluster, kEnd);
  if (manual != nullptr) {
    // §2.1's "Proactive" arm is a human operator creating the
    // heuristically-determined counts for the whole chain the moment the
    // flood starts (instances still pay the Fig. 1 startup latency).
    cluster.events().schedule_at(kSurgeAt, [&cluster, manual] {
      manual->apply(cluster, {kSurgeQps, 0.0, 0.0});
    });
  }

  bench::LatencyRecorder rec;
  workload::OpenLoopConfig g;
  g.rate = workload::Schedule::step(5.0, kSurgeQps, kSurgeAt);
  g.api_weights = {1.0, 0.0, 0.0};  // cart-page flood
  g.seed = seed + 1;
  g.on_complete = rec.hook();
  workload::OpenLoopGenerator gen{cluster, g};
  gen.start(kEnd);

  ArmResult res;
  res.name = name;
  for (double t = 25.0; t <= kEnd; t += 25.0) {
    cluster.run_until(t);
    res.instances_series.emplace_back(t, cluster.total_target_instances());
  }
  res.final_instances = cluster.total_target_instances();
  res.p90 = rec.percentile(90.0);
  res.p95 = rec.percentile(95.0);
  res.p99 = rec.percentile(99.0);
  res.completed = rec.count();
  res.failed = rec.failures();
  return res;
}

}  // namespace

int main() {
  using namespace graf;
  const auto topo = apps::online_boutique();
  std::vector<ArmResult> arms;

  {
    // The §2.1 "Proactive" arm: oracle knowledge of fan-out and demands,
    // sized with generous headroom to absorb the detection-free ramp.
    std::vector<double> demands;
    for (const auto& svc : topo.services) demands.push_back(svc.demand_mean_ms);
    autoscalers::ProactiveOracle oracle{{.headroom = 0.35},
                                        core::expected_fanout(topo), demands};
    arms.push_back(run_arm("Proactive", nullptr, &oracle, 11));
  }
  for (double thr : {0.10, 0.25, 0.50}) {
    autoscalers::K8sHpa hpa{{.target_utilization = thr}};
    arms.push_back(run_arm("K8s(" + std::to_string(static_cast<int>(thr * 100)) + "%)",
                           &hpa, nullptr, 11));
  }

  Table fig2{"Figure 2: total #instances during a 300-qps cart-page surge"};
  {
    std::vector<std::string> hdr{"time (s)"};
    for (const auto& a : arms) hdr.push_back(a.name);
    fig2.header(hdr);
    for (std::size_t i = 0; i < arms.front().instances_series.size(); ++i) {
      std::vector<std::string> row{
          Table::num(arms.front().instances_series[i].first, 0)};
      for (const auto& a : arms)
        row.push_back(Table::integer(a.instances_series[i].second));
      fig2.row(row);
    }
  }
  fig2.print(std::cout);

  Table fig3{"Figure 3: end-to-end latency during the surge (seconds)"};
  fig3.header({"arm", "p90 (s)", "p95 (s)", "p99 (s)", "completed", "timeouts",
               "final instances"});
  for (const auto& a : arms) {
    fig3.row({a.name, Table::num(a.p90 / 1000.0, 2), Table::num(a.p95 / 1000.0, 2),
              Table::num(a.p99 / 1000.0, 2), Table::integer((long long)a.completed),
              Table::integer((long long)a.failed), Table::integer(a.final_instances)});
  }
  fig3.print(std::cout);

  const auto& pro = arms[0];
  const auto& hpa10 = arms[1];
  std::cout << "Shape check (paper: Proactive ~8.6x lower p99 than K8s(10%) with "
               "~6.6x fewer instances):\n  p99 ratio = "
            << Table::num(hpa10.p99 / pro.p99, 1)
            << "x, instance ratio = "
            << Table::num(static_cast<double>(hpa10.final_instances) /
                              static_cast<double>(pro.final_instances),
                          1)
            << "x\n";
  return 0;
}
