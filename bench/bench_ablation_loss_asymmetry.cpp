// Ablation (paper §3.4's third loss "trick"): what does the asymmetric
// Hüber buy over a symmetric one? Trains both on the cached Online
// Boutique dataset and compares (a) the signed prediction bias and (b) the
// SLO-compliance of solver configurations measured on the cluster — the
// asymmetry exists precisely to keep under-estimation (hidden SLO
// violations) rare.
#include <iostream>

#include "bench_common.h"
#include "common/table.h"
#include "core/latency_predictor.h"
#include "core/sample_collector.h"

namespace {

struct Variant {
  std::string name;
  double theta_under;
  double theta_over;
};

}  // namespace

int main() {
  using namespace graf;
  auto stack = bench::build_or_load_stack(bench::online_boutique_stack_config());

  const Variant variants[] = {
      {"asymmetric (0.3/0.1)", 0.3, 0.1},
      {"symmetric (0.2/0.2)", 0.2, 0.2},
      {"inverted (0.1/0.3)", 0.1, 0.3},
  };

  sim::Cluster cluster = apps::make_cluster(stack.topo, {.seed = 95});
  core::WorkloadAnalyzer analyzer{cluster.api_count(), cluster.service_count()};
  analyzer.set_fanout(stack.fanout);
  core::SampleCollectorConfig mcfg;
  mcfg.closed_loop = true;  // measure with the training load model
  core::SampleCollector measurer{cluster, analyzer, mcfg};
  const auto workload = stack.node_workload(stack.base_qps);

  Table table{"Ablation: loss asymmetry (Online Boutique dataset)"};
  table.header({"loss", "test MAPE (%)", "signed bias (%)", "SLO compliance"});

  for (const auto& v : variants) {
    core::LatencyPredictor pred{stack.dag, gnn::MpnnConfig{}, 97};
    gnn::TrainConfig tcfg;
    tcfg.iterations = 4000;
    tcfg.batch_size = 128;
    tcfg.lr = 1e-3;
    tcfg.lr_decay_every = 1000;
    tcfg.eval_every = 500;
    tcfg.theta_under = v.theta_under;
    tcfg.theta_over = v.theta_over;
    pred.train(stack.dataset, tcfg);
    const auto acc = pred.model().evaluate_accuracy(pred.test_set());

    // Solve + measure at three SLOs; the margin is disabled so compliance
    // reflects the loss-induced bias alone.
    core::SolverConfig scfg;
    scfg.slo_margin = 1.0;
    core::ConfigurationSolver solver{pred.model(), scfg};
    int ok = 0;
    int n = 0;
    for (double f : {1.3, 1.6, 2.0}) {
      const double slo = stack.floor_p99 * f;
      const auto res = solver.solve(workload, slo, stack.space.lo, stack.space.hi);
      for (std::size_t s = 0; s < res.quota.size(); ++s)
        cluster.apply_total_quota(static_cast<int>(s), res.quota[s], 1000.0);
      const double measured = measurer.measure_tail(stack.base_qps, 20.0, 99.0);
      ++n;
      if (measured <= slo) ++ok;
    }
    table.row({v.name, Table::num(acc.mean_abs_pct_error, 1),
               Table::num(acc.mean_pct_error, 1),
               Table::integer(ok) + "/" + Table::integer(n)});
  }
  table.print(std::cout);
  std::cout << "Expectation: the paper's orientation (theta_under > theta_over)\n"
               "shifts the bias upward and yields the best SLO compliance; the\n"
               "inverted orientation under-estimates and violates most.\n";
  return 0;
}
