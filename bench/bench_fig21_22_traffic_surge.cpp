// Figures 21 and 22 (§5.3 "Handling traffic surge"): Locust doubles its
// user population abruptly; GRAF (whole-chain proactive allocation) vs the
// tuned Kubernetes HPA vs the FIRM-like per-service comparator.
//
// Paper shape: GRAF creates its (fewer) instances in one burst right after
// the surge and its tail latency converges up to 2.6x faster; the reactive
// baselines crawl up the chain (cascading effect), creating 13-60% more
// instances and converging later.
#include <iostream>
#include <string>
#include <vector>

#include "autoscalers/firm_like.h"
#include "autoscalers/k8s_hpa.h"
#include "bench_common.h"
#include "common/stats.h"
#include "common/table.h"
#include "workload/closed_loop.h"

namespace {

constexpr double kSurgeAt = 150.0;
constexpr double kEnd = 500.0;

struct ArmResult {
  std::string name;
  std::vector<int> instances;        // sampled every 10 s
  int instances_at_end = 0;
  double converge_s = 0.0;           // time after surge until p99 settles
};

ArmResult run(const std::string& name, graf::sim::Cluster& cluster,
              double users_before, double users_after, double slo,
              std::uint64_t seed) {
  using namespace graf;
  workload::ClosedLoopConfig g;
  g.users = workload::Schedule::step(users_before, users_after, kSurgeAt);
  g.api_weights = apps::online_boutique().api_weights;
  g.seed = seed;
  workload::ClosedLoopGenerator gen{cluster, g};
  gen.start(kEnd);

  ArmResult out;
  out.name = name;
  double last_violation = kSurgeAt;
  for (double t = 10.0; t <= kEnd; t += 10.0) {
    cluster.run_until(t);
    out.instances.push_back(cluster.total_target_instances());
    if (t > kSurgeAt) {
      auto& e2e = cluster.e2e_latency_all();
      const double since = t - 10.0;
      if (e2e.count_since(since) >= 10 &&
          e2e.percentile_since(since, 99.0) > 1.5 * slo) {
        last_violation = t;
      }
    }
  }
  out.instances_at_end = cluster.total_target_instances();
  out.converge_s = last_violation - kSurgeAt;
  return out;
}

void report(const std::string& title, const std::vector<ArmResult>& arms) {
  using graf::Table;
  Table fig21{title + " — Figure 21: total instances over time"};
  {
    std::vector<std::string> hdr{"time (s)"};
    for (const auto& a : arms) hdr.push_back(a.name);
    fig21.header(hdr);
    for (std::size_t i = 9; i < arms.front().instances.size(); i += 4) {
      std::vector<std::string> row{Table::num(10.0 * static_cast<double>(i + 1), 0)};
      for (const auto& a : arms) row.push_back(Table::integer(a.instances[i]));
      fig21.row(row);
    }
  }
  fig21.print(std::cout);

  Table fig22{title + " — Figure 22: tail-latency convergence after the surge"};
  fig22.header({"arm", "time to converge (s)", "instances at end"});
  for (const auto& a : arms)
    fig22.row({a.name, Table::num(a.converge_s, 0), Table::integer(a.instances_at_end)});
  fig22.print(std::cout);
}

}  // namespace

int main() {
  using namespace graf;
  auto stack = bench::build_or_load_stack(bench::online_boutique_stack_config());
  const double slo = stack.default_slo_ms;
  const double thr = bench::tune_hpa_threshold(stack.topo, 1250.0, slo, 81);

  // The paper surges 250 -> 500 Locust threads; at our per-instance scale
  // the equivalent doubling happens at 625 and 1250 threads.
  for (double users_after : {625.0, 1250.0}) {
    const double users_before = users_after / 2.0;
    std::vector<ArmResult> arms;
    {
      sim::Cluster cluster = apps::make_cluster(stack.topo, {.seed = 83});
      auto rt = bench::make_graf_runtime(stack, slo);
      rt.autoscaler->attach(cluster, kEnd);
      arms.push_back(run("GRAF", cluster, users_before, users_after, slo, 85));
    }
    {
      sim::Cluster cluster = apps::make_cluster(stack.topo, {.seed = 83});
      autoscalers::K8sHpa hpa{{.target_utilization = thr}};
      hpa.attach(cluster, kEnd);
      arms.push_back(
          run("K8s Autoscaler", cluster, users_before, users_after, slo, 85));
    }
    {
      sim::Cluster cluster = apps::make_cluster(stack.topo, {.seed = 83});
      autoscalers::FirmLike firm{{}};
      firm.attach(cluster, kEnd);
      arms.push_back(run("FIRM-like", cluster, users_before, users_after, slo, 85));
    }
    report(Table::num(users_after, 0) + " threads", arms);
  }
  std::cout << "Shape check (paper): GRAF converges fastest (up to 2.6x) with the\n"
               "fewest instances; the per-service baselines pay the cascading\n"
               "effect.\n";
  return 0;
}
