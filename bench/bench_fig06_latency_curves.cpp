// Figure 6: per-microservice median-latency-vs-CPU-quota curves (Robot
// Shop's Web and Catalogue), the heterogeneity GRAF exploits (§2.2):
// Catalogue's curve is much sharper than Web's, so shifting CPU toward
// Catalogue buys the same end-to-end latency with less total CPU.
#include <iostream>

#include "bench_common.h"
#include "common/table.h"
#include "workload/open_loop.h"

int main() {
  using namespace graf;

  Table table{"Figure 6: 50%-tile local latency vs CPU quota (Robot Shop)"};
  table.header({"quota (mc)", "catalogue p50 (ms)", "web p50 (ms)"});

  const double kQps = 6.0;
  for (double quota : {200.0, 300.0, 400.0, 500.0, 600.0, 800.0, 1000.0, 1250.0, 1500.0}) {
    double p50[2] = {0.0, 0.0};
    // Sweep one service at a time (single instance, vertical scaling), the
    // rest kept at generous quotas — exactly how the curves are measured.
    for (int target : {1 /*catalogue*/, 0 /*web*/}) {
      auto topo = apps::robot_shop();
      sim::Cluster cluster = apps::make_cluster(topo, {.seed = 5});
      for (int s = 0; s < static_cast<int>(cluster.service_count()); ++s)
        cluster.apply_total_quota(s, 2500.0, 1000.0);
      cluster.apply_total_quota(target, quota, quota);  // one instance

      workload::OpenLoopConfig g;
      g.rate = workload::Schedule::constant(kQps);
      g.api_weights = {1.0, 0.0, 0.0};  // get-catalogue: web -> catalogue
      g.seed = 7;
      workload::OpenLoopGenerator gen{cluster, g};
      gen.start(40.0);
      cluster.run_until(40.0);
      p50[target] = cluster.service_latency(target).percentile_since(10.0, 50.0);
    }
    table.row({Table::num(quota, 0), Table::num(p50[1], 1), Table::num(p50[0], 1)});
  }
  table.print(std::cout);
  std::cout << "Shape check (paper): both curves decrease monotonically; the\n"
               "catalogue curve is far steeper at low quota than the web curve.\n";
  return 0;
}
