// Ablation (paper §7 related work): all four controllers side by side —
// GRAF, the tuned Kubernetes HPA, the FIRM-like latency-ratio scaler, and
// the MIRAS-like queue-depth scaler — under the same steady load and the
// same doubling surge. Extends Fig. 21/22's three-way comparison with the
// MIRAS-like policy the paper discusses but does not run.
#include <iostream>
#include <memory>

#include "autoscalers/firm_like.h"
#include "autoscalers/k8s_hpa.h"
#include "autoscalers/miras_like.h"
#include "bench_common.h"
#include "common/table.h"
#include "workload/closed_loop.h"

namespace {

constexpr double kSurgeAt = 150.0;
constexpr double kEnd = 450.0;

struct ArmResult {
  graf::bench::SteadyStateResult steady;
  double surge_p99 = 0.0;
  std::size_t surge_failures = 0;
  int instances_after = 0;
};

ArmResult run(graf::sim::Cluster& cluster, graf::bench::TrainedStack& stack,
              double users) {
  using namespace graf;
  ArmResult out;
  // Steady phase measurement.
  out.steady = bench::measure_steady_state(cluster, users, stack.topo.api_weights,
                                           120.0, 60.0, 131);
  // Surge phase: double the population, record the transient.
  bench::LatencyRecorder rec;
  workload::ClosedLoopConfig g;
  g.users = workload::Schedule::constant(users * 2.0);
  g.api_weights = stack.topo.api_weights;
  g.seed = 133;
  g.on_complete = rec.hook();
  workload::ClosedLoopGenerator gen{cluster, g};
  gen.start(cluster.now() + (kEnd - kSurgeAt));
  cluster.run_for(kEnd - kSurgeAt);
  out.surge_p99 = rec.latencies().empty() ? 0.0 : rec.percentile(99.0);
  out.surge_failures = rec.failures();
  out.instances_after = cluster.total_target_instances();
  return out;
}

}  // namespace

int main() {
  using namespace graf;
  auto stack = bench::build_or_load_stack(bench::online_boutique_stack_config());
  const double slo = stack.default_slo_ms;
  const double users = 1000.0;
  const double thr = bench::tune_hpa_threshold(stack.topo, users, slo, 137);

  Table table{"Ablation: controller zoo under steady load + doubling surge"};
  table.header({"controller", "steady p99 (ms)", "steady instances",
                "surge p99 (ms)", "surge timeouts", "instances after"});

  {
    sim::Cluster cluster = apps::make_cluster(stack.topo, {.seed = 139});
    auto rt = bench::make_graf_runtime(stack, slo);
    rt.autoscaler->attach(cluster, 1e9);
    const auto r = run(cluster, stack, users);
    table.row({"GRAF", Table::num(r.steady.p99_ms, 0),
               Table::num(r.steady.mean_total_instances, 1),
               Table::num(r.surge_p99, 0),
               Table::integer(static_cast<long long>(r.surge_failures)),
               Table::integer(r.instances_after)});
  }
  {
    sim::Cluster cluster = apps::make_cluster(stack.topo, {.seed = 139});
    autoscalers::K8sHpa hpa{{.target_utilization = thr}};
    hpa.attach(cluster, 1e9);
    const auto r = run(cluster, stack, users);
    table.row({"K8s HPA (" + Table::num(thr, 2) + ")", Table::num(r.steady.p99_ms, 0),
               Table::num(r.steady.mean_total_instances, 1),
               Table::num(r.surge_p99, 0),
               Table::integer(static_cast<long long>(r.surge_failures)),
               Table::integer(r.instances_after)});
  }
  {
    sim::Cluster cluster = apps::make_cluster(stack.topo, {.seed = 139});
    autoscalers::FirmLike firm{{}};
    firm.attach(cluster, 1e9);
    const auto r = run(cluster, stack, users);
    table.row({"FIRM-like", Table::num(r.steady.p99_ms, 0),
               Table::num(r.steady.mean_total_instances, 1),
               Table::num(r.surge_p99, 0),
               Table::integer(static_cast<long long>(r.surge_failures)),
               Table::integer(r.instances_after)});
  }
  {
    sim::Cluster cluster = apps::make_cluster(stack.topo, {.seed = 139});
    autoscalers::MirasLike miras{{}};
    miras.attach(cluster, 1e9);
    const auto r = run(cluster, stack, users);
    table.row({"MIRAS-like", Table::num(r.steady.p99_ms, 0),
               Table::num(r.steady.mean_total_instances, 1),
               Table::num(r.surge_p99, 0),
               Table::integer(static_cast<long long>(r.surge_failures)),
               Table::integer(r.instances_after)});
  }
  table.print(std::cout);
  std::cout << "Expectation: only GRAF keeps the surge transient mild (it scales\n"
               "the whole chain from the front-end signal); the reactive\n"
               "controllers differ mainly in which symptom (utilization, latency\n"
               "ratio, queue depth) they lag behind.\n";
  return 0;
}
