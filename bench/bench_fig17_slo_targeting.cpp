// Figure 17 (§5.2): deploy the solver's configuration for a sweep of
// latency SLOs and measure the actual 99%-tile. Paper: 85.1% of the
// configurations meet their target, and the measured points hug the target
// line (tight minimization). Also reports the solver's convergence-time
// distribution (§5.2: 90%-tile ~6.7 s on their Python stack; our C++ solver
// is orders of magnitude faster, so the *iterations* are the comparable
// quantity).
#include <algorithm>
#include <iostream>

#include "bench_common.h"
#include "common/stats.h"
#include "common/table.h"
#include "core/sample_collector.h"

int main() {
  using namespace graf;
  auto stack = bench::build_or_load_stack(bench::online_boutique_stack_config());
  auto rt = bench::make_graf_runtime(stack, stack.default_slo_ms);

  Table table{"Figure 17: measured p99 vs target latency SLO (Online Boutique)"};
  table.header({"workload scale", "SLO (ms)", "predicted (ms)", "measured p99 (ms)",
                "within SLO", "solver iters", "solve (ms)"});

  sim::Cluster cluster = apps::make_cluster(stack.topo, {.seed = 41});
  core::WorkloadAnalyzer analyzer{cluster.api_count(), cluster.service_count()};
  analyzer.set_fanout(stack.fanout);
  // Measure with the same (closed-loop) load model the stack was trained on.
  core::SampleCollectorConfig mcfg;
  mcfg.closed_loop = true;
  core::SampleCollector measurer{cluster, analyzer, mcfg};

  std::size_t ok = 0;
  std::size_t n = 0;
  std::vector<double> solve_ms;
  std::vector<double> iters;
  for (double wscale : {0.7, 0.85, 1.0}) {
    std::vector<Qps> api = stack.base_qps;
    for (auto& q : api) q *= wscale;
    const auto workload = stack.node_workload(api);
    for (double f : {1.15, 1.3, 1.5, 1.75, 2.0}) {
      const double slo = stack.floor_p99 * f;
      auto res = rt.solver->solve(workload, slo, stack.space.lo, stack.space.hi);
      for (std::size_t s = 0; s < res.quota.size(); ++s)
        cluster.apply_total_quota(static_cast<int>(s), res.quota[s], 1000.0);
      const double measured = measurer.measure_tail(api, 25.0, 99.0);
      ++n;
      const bool within = measured <= slo;
      if (within) ++ok;
      solve_ms.push_back(res.solve_seconds * 1000.0);
      iters.push_back(static_cast<double>(res.iterations));
      table.row({Table::num(wscale, 2), Table::num(slo, 0),
                 Table::num(res.predicted_ms, 0), Table::num(measured, 0),
                 within ? "yes" : "no",
                 Table::integer(static_cast<long long>(res.iterations)),
                 Table::num(res.solve_seconds * 1000.0, 1)});
    }
  }
  table.print(std::cout);

  std::cout << "Fraction within SLO: " << ok << "/" << n << " = "
            << Table::num(100.0 * static_cast<double>(ok) / static_cast<double>(n), 1)
            << "% (paper: 85.1%)\n";
  std::cout << "Solver convergence: p90 " << Table::num(percentile(iters, 90.0), 0)
            << " iterations / " << Table::num(percentile(solve_ms, 90.0), 1)
            << " ms wall (paper: 6.7 s p90 on Python+GPU — report iterations for\n"
               "a substrate-independent comparison)\n";
  return 0;
}
