#!/usr/bin/env python3
"""Perf regression gate over the BENCH_perf.json trajectory.

Runs a smoke-sized pass of the gate benchmarks and fails (exit 1) when any
of them regressed by more than --threshold (default 25%) against the
checked-in baseline rows in BENCH_perf.json.

Gate rows (time-per-op, lower is better):
  BM_Matmul/128              blocked GEMM kernel
  BM_GnnInference            one latency-model forward
  BM_SimulatorEventThroughput  30 simulated seconds of online_boutique
  BM_ShardedSimulatorEventThroughput/1  the same workload at 5x rate over 8
                             shard queues, single-threaded (the /8 row is
                             ungated: on a single-core CI box 8 workers
                             just contend for one core, so its wall clock
                             reads flat-to-slower vs /1 by design)
  BM_FleetPlanThroughput/1   8-tenant fleet step, single-threaded
                             one-solve-per-tenant fan-out (the /8 row is
                             ungated, same caveat)
  BM_FleetBatchedPlanThroughput/1  the same 8-tenant step with the tenants
                             coalesced into one block-diagonal solve_batch
                             (DESIGN.md 3.13) — single-threaded, so the
                             batch-width speedup holds on one core
  BM_ForecastStep            one forecast-gated control tick (observe +
                             predict + scale)
  BM_SurrogatePlanThroughput/1  one two-tier plan (surrogate descent + one
                             full-GNN verification forward), single-threaded
                             (DESIGN.md 3.14; the /8 row is ungated, same
                             single-core caveat as the fleet rows)
  BM_SurrogateDistill        one admission-sized distillation pass (sample
                             teacher + fit MLP + validate)

Caveat: CI containers are typically pinned to a single core and share it
with the rest of the job, so absolute timings are noisy — observed drift
on a shared box is +/-30% over minutes, which would trip a single-shot
25% gate on pure luck. Smoke mode therefore runs the gate binary
--repeats times (default 3) and compares the per-row MINIMUM against the
baseline: the min is the standard noise-robust timing statistic (load
spikes only ever make code slower), and a real regression shifts the min
too. Each pass stays short (--benchmark_min_time well below the library
default) and the 25% threshold is deliberately loose — this gate catches
order-of-magnitude mistakes (a kernel falling off its fast path, an
accidental O(n^2)), not single-digit drift. Refresh the baseline by
running bench_perf_micro in full and committing the rewritten
BENCH_perf.json.

Usage:
  scripts/bench_check.py [--build-dir build] [--baseline BENCH_perf.json]
                         [--threshold 0.25] [--min-time 0.05] [--repeats 3]
"""

import argparse
import json
import os
import subprocess
import sys
import tempfile

GATES = [
    "BM_Matmul/128",
    "BM_GnnInference",
    "BM_SimulatorEventThroughput",
    "BM_ShardedSimulatorEventThroughput/1",
    "BM_FleetPlanThroughput/1",
    "BM_FleetBatchedPlanThroughput/1",
    "BM_ForecastStep",
    "BM_SurrogatePlanThroughput/1",
    "BM_SurrogateDistill",
]

# ns per unit, for rows whose units differ between baseline and fresh runs.
UNIT_NS = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}


def load_rows(path):
    with open(path, "r", encoding="utf-8") as f:
        doc = json.load(f)
    rows = {}
    for row in doc.get("results", []):
        unit = row.get("unit", "ns")
        if unit in UNIT_NS:
            rows[row["name"]] = row["value"] * UNIT_NS[unit]
    return rows


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--build-dir", default="build")
    ap.add_argument("--baseline", default="BENCH_perf.json")
    ap.add_argument("--threshold", type=float, default=0.25,
                    help="allowed fractional regression (0.25 = +25%%)")
    ap.add_argument("--min-time", default="0.05",
                    help="benchmark_min_time seconds per gate row (smoke); "
                         "plain double, no 's' suffix (older benchmark libs "
                         "reject the suffixed form)")
    ap.add_argument("--repeats", type=int, default=3,
                    help="smoke passes per gate; the per-row minimum is "
                         "compared (noise-robust: contention only slows)")
    args = ap.parse_args()

    repo = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    binary = os.path.join(repo, args.build_dir, "bench", "bench_perf_micro")
    baseline_path = os.path.join(repo, args.baseline)
    if not os.path.exists(binary):
        print(f"bench_check: missing {binary} (build first)", file=sys.stderr)
        return 2
    if not os.path.exists(baseline_path):
        print(f"bench_check: missing baseline {baseline_path}", file=sys.stderr)
        return 2
    baseline = load_rows(baseline_path)
    missing = [g for g in GATES if g not in baseline]
    if missing:
        print(f"bench_check: baseline lacks rows {missing}", file=sys.stderr)
        return 2

    # Wall-clock benchmarks carry a "/real_time" suffix in their instance
    # name (the suffix is stripped from the emitted rows, but the filter
    # matches the suffixed form).
    bench_filter = "^(" + "|".join(GATES) + ")(/real_time)?$"
    fresh = {}
    for _ in range(max(1, args.repeats)):
        with tempfile.TemporaryDirectory() as tmp:
            env = dict(os.environ)
            env["GRAF_BENCH_OUT"] = tmp
            subprocess.run(
                [binary,
                 f"--benchmark_filter={bench_filter}",
                 f"--benchmark_min_time={args.min_time}"],
                check=True, env=env, cwd=tmp,
                stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)
            for name, ns in load_rows(
                    os.path.join(tmp, "BENCH_perf.json")).items():
                fresh[name] = min(ns, fresh.get(name, float("inf")))

    failed = False
    for gate in GATES:
        if gate not in fresh:
            print(f"bench_check: FAIL {gate}: no fresh measurement",
                  file=sys.stderr)
            failed = True
            continue
        base_ns, new_ns = baseline[gate], fresh[gate]
        ratio = new_ns / base_ns if base_ns > 0 else float("inf")
        verdict = "ok" if ratio <= 1.0 + args.threshold else "FAIL"
        print(f"bench_check: {verdict} {gate}: {new_ns:.0f}ns vs "
              f"baseline {base_ns:.0f}ns ({ratio:.2f}x baseline)")
        if verdict == "FAIL":
            failed = True
    if failed:
        print(f"bench_check: regression beyond +{args.threshold:.0%}; see "
              "docstring for the single-core noise caveat before trusting "
              "a marginal failure", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
