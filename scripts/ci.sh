#!/usr/bin/env bash
# Tier-1 gate: warnings-as-errors build + full test suite.
#
#   scripts/ci.sh                        # plain gate
#   GRAF_SANITIZE=1 scripts/ci.sh        # same gate under ASan/UBSan
#   GRAF_SANITIZE=thread scripts/ci.sh   # same gate under TSan (parallel layer)
#
# Uses a dedicated build dir so it never disturbs an existing ./build.
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR=${BUILD_DIR:-build-ci}
case "${GRAF_SANITIZE:-0}" in
  0) SANITIZE_FLAG=OFF ;;
  1) SANITIZE_FLAG=address ;;
  *) SANITIZE_FLAG=${GRAF_SANITIZE} ;;
esac

cmake -B "$BUILD_DIR" -S . \
  -DCMAKE_CXX_FLAGS=-Werror \
  -DGRAF_SANITIZE="$SANITIZE_FLAG"
cmake --build "$BUILD_DIR" -j "$(nproc)"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)"

# The chaos group (fault injection + degraded-mode integration), the fleet
# group (multi-tenant control plane, including the §3.13 batched-vs-
# per-tenant bitwise-identity tests), the forecast group (workload
# forecasting + pre-warmed planning), the sim group (sharded simulator
# digests), and the surrogate group (distilled fast-path planning, §3.14 —
# solver-in-the-loop distillation and tiered solves carry the same
# bit-identity contract) again at pinned thread counts: these runs must
# replay bit-identically whether the pool has 1 worker or 8 (DESIGN.md
# §3.7/§3.8/§3.10/§3.11/§3.12/§3.13/§3.14 determinism contract).
# Under the sanitizer legs this doubles as the ASan/TSan pass over the
# fleet's ingest ring, subscriber registry, registry hot-swap paths, and
# the sharded engine's window barriers.
for threads in 1 8; do
  GRAF_THREADS=$threads \
    ctest --test-dir "$BUILD_DIR" --output-on-failure -L 'chaos|fleet|forecast|sim|surrogate'
done

# Perf smoke gate (plain leg only: sanitizer overhead would trip any time
# threshold): >25% regression on the hot-path benchmarks vs BENCH_perf.json.
if [ "$SANITIZE_FLAG" = OFF ]; then
  python3 scripts/bench_check.py --build-dir "$BUILD_DIR"
fi
